//! A12 — sharded counter capacity: scale the state store horizontally.
//!
//! The paper's capacity argument (§1, §2) is that external memory grows a
//! switch resource by adding servers. E6 prices that claim from byte
//! layouts; this bin *runs* it: a ToR whose counter store is sharded over
//! a consistent-hash ring of replicated pools, swept across shard counts
//! under the same million-flow Zipf workload. For each sweep point it
//! reports
//!
//! * capacity: counter slots vs servers (must scale linearly — the ring
//!   adds capacity, it never re-partitions a fixed region),
//! * occupancy: distinct slots actually touched by the skewed traffic,
//! * delivery latency at the sink (median / p99 / max) — scaling out must
//!   not cost the data path anything,
//! * exactness: settled counters equal the routing oracle on every
//!   replica of every shard,
//! * rebalance cost: the measured key fraction that moves when one more
//!   shard joins the ring, against the consistent-hash ideal 1/(K+1).
//!
//! The workload synthesizes its flow population (`FlowSet::synth`), so
//! the generator holds O(1) state for the 2^20+ distinct five-tuples it
//! streams — the scale this sweep exists to exercise.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{
    Arrival, FlowPick, FlowSet, SinkNode, TrafficGenNode, WorkloadSpec,
};
use extmem_bench::table::print_table;
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::shard::ShardedStateStoreProgram;
use extmem_core::state_store::read_remote_counters;
use extmem_core::{Fib, PoolConfig, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, PortId, Rate, Time, TimeDelta};

/// Counter slots per shard (64-bit words; 512 KiB of server DRAM each).
const COUNTERS_PER_SHARD: u64 = 65_536;
/// Replicas per shard pool.
const REPLICAS: usize = 2;
/// Distinct five-tuples in the synthesized population.
const FLOWS: usize = (1 << 20) + 200_000;
/// Packets sent per sweep point.
const COUNT: u64 = 1 << 20;
/// Zipf exponent: the skew that makes slot occupancy interesting.
const ZIPF_S: f64 = 1.05;

struct Out {
    shards: u32,
    servers: usize,
    slots: u64,
    slots_used: usize,
    median: TimeDelta,
    p99: TimeDelta,
    max: TimeDelta,
    exact: bool,
    moved_next: f64,
}

/// One sweep point: a ToR sharded over `k` pools, the million-flow Zipf
/// workload pushed through it, settled state audited replica by replica.
fn probe(k: u32) -> Out {
    let region = ByteSize::from_bytes(COUNTERS_PER_SHARD * 8);
    let mut nics: Vec<Option<RnicNode>> = Vec::new();
    let mut keys = Vec::new(); // [shard][replica] -> (rkey, base_va)
    let mut shards = Vec::new();
    for shard in 0..k {
        let mut channels = Vec::new();
        let mut shard_keys = Vec::new();
        for r in 0..REPLICAS {
            let port = 2 + shard as usize * REPLICAS + r;
            let mut nic = RnicNode::new(
                format!("mems{shard}r{r}"),
                RnicConfig::at(host_endpoint(port)),
            );
            let ch = RdmaChannel::setup(switch_endpoint(), PortId(port as u16), &mut nic, region);
            shard_keys.push((ch.rkey, ch.base_va));
            channels.push(ch);
            nics.push(Some(nic));
        }
        keys.push(shard_keys);
        let engine = FaaEngine::replicated(
            channels,
            FaaConfig {
                // 10 Gbps of 256 B frames is ~4.9M updates/s; a 32-deep
                // window at ~1us of server RTT drains well past that, so
                // the pending backlog stays bounded even at one shard.
                max_outstanding: 32,
                reliable: true,
                rto: TimeDelta::from_micros(50),
                ..Default::default()
            },
            PoolConfig::default(),
        );
        shards.push((shard, engine, true));
    }
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = ShardedStateStoreProgram::new(fib, shards, 64, TimeDelta::from_micros(20));

    let mut b = SimBuilder::new(1200 + k as u64);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec {
            src_mac: host_mac(0),
            dst_mac: host_mac(1),
            flows: FlowSet::synth(FLOWS, 0x0ac0_0000, host_ip(1), 9_000),
            pick: FlowPick::Zipf(ZIPF_S),
            frame_len: 256,
            offered: Some(Rate::from_gbps(10)),
            arrival: Arrival::Paced,
            count: COUNT,
            seed: 77,
            flow_id_base: 0,
        },
    )));
    // The coarse sink keeps aggregate counters and the latency recorder
    // but no per-flow map — O(1) memory against a 2^20-flow stream.
    let sink = b.add_node(Box::new(SinkNode::coarse("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let mut servers = Vec::new();
    for (i, nic) in nics.iter_mut().enumerate() {
        let id = b.add_node(Box::new(nic.take().expect("server NIC built once")));
        b.connect(switch, PortId((2 + i) as u16), id, PortId(0), link);
        servers.push(id);
    }
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // ~215ms of paced traffic, then drain adaptively: at one shard the
    // pending backlog (up to 64K merged slots) plus the mirror delta
    // replay takes tens of ms to flush through the FaA window, and the
    // replica audit below is only meaningful once everything settled.
    let send_time = TimeDelta::from_secs_f64(COUNT as f64 * 256.0 * 8.0 / 10e9);
    let mut deadline = Time::ZERO + send_time + TimeDelta::from_millis(5);
    for _ in 0..60 {
        sim.run_until(deadline);
        let settled = sim
            .node::<SwitchNode>(switch)
            .program::<ShardedStateStoreProgram>()
            .is_settled();
        if settled {
            break;
        }
        deadline += TimeDelta::from_millis(5);
    }

    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<ShardedStateStoreProgram>();
    let mut exact = true;
    if !prog.is_settled() {
        eprintln!("k={k}: not settled at the drain cap");
        exact = false;
    }
    if prog.is_degraded() {
        eprintln!("k={k}: a shard pool degraded");
        exact = false;
    }
    for shard in 0..k {
        let mut expected = vec![0u64; COUNTERS_PER_SHARD as usize];
        for (&(sh, slot), &v) in &prog.oracle {
            if sh == shard {
                expected[slot as usize] += v;
            }
        }
        for rep in 0..REPLICAS {
            let node = servers[shard as usize * REPLICAS + rep];
            let (rkey, base_va) = keys[shard as usize][rep];
            let dump =
                read_remote_counters(sim.node::<RnicNode>(node), rkey, base_va, COUNTERS_PER_SHARD);
            if dump != expected {
                let bad = dump.iter().zip(&expected).filter(|(a, b)| a != b).count();
                let (ds, es) = (dump.iter().sum::<u64>(), expected.iter().sum::<u64>());
                eprintln!("k={k} shard {shard} replica {rep}: {bad} slots diverge (sum {ds} vs oracle {es})");
                exact = false;
            }
        }
    }
    let sink = sim.node::<SinkNode>(sink);
    if sink.received != COUNT {
        eprintln!("k={k}: sink received {} of {COUNT}", sink.received);
        exact = false;
    }
    let lat = sink.latency.summarize().expect("sink saw traffic");

    // Rebalance cost of the *next* scale-out step, measured on the ring:
    // fraction of the key space that moves when shard k joins.
    let grown = {
        let mut r = prog.ring().clone();
        r.add_shard(k);
        r
    };
    let moved_next = prog.ring().remap_fraction(&grown, 1 << 16);

    Out {
        shards: k,
        servers: k as usize * REPLICAS,
        slots: prog.capacity_slots(),
        slots_used: prog.oracle.len(),
        median: lat.median,
        p99: lat.p99,
        max: lat.max,
        exact,
        moved_next,
    }
}

fn main() {
    println!(
        "A12: sharded counter capacity — {} Zipf({ZIPF_S}) flows, {} updates per point",
        FLOWS, COUNT
    );
    println!();
    let sweep = [1u32, 2, 4, 8];
    let outs: Vec<Out> = sweep.iter().map(|&k| probe(k)).collect();
    let rows: Vec<Vec<String>> = outs
        .iter()
        .map(|o| {
            let ideal = 1.0 / (o.shards as f64 + 1.0);
            vec![
                o.shards.to_string(),
                o.servers.to_string(),
                human(o.slots),
                format!(
                    "{} ({:.0}%)",
                    human(o.slots_used as u64),
                    100.0 * o.slots_used as f64 / o.slots as f64
                ),
                format!("{}", o.median),
                format!("{}", o.p99),
                format!("{}", o.max),
                if o.exact { "yes" } else { "NO" }.to_string(),
                format!("{:.3} (ideal {:.3})", o.moved_next, ideal),
            ]
        })
        .collect();
    print_table(
        "capacity, latency, and rebalance cost vs shard count",
        &[
            "shards",
            "servers",
            "slots",
            "slots used",
            "p50",
            "p99",
            "max",
            "exact",
            "moved on +1",
        ],
        &rows,
    );
    // The linearity claim, stated as data: slots per sweep point are
    // exactly shard-count multiples of the single-shard capacity.
    let base = outs[0].slots;
    assert!(
        outs.iter().all(|o| o.slots == base * o.shards as u64),
        "capacity must scale linearly with shards"
    );
    println!();
    println!("expectation: slots grow linearly with servers while the data path is");
    println!("untouched — p50/p99 stay flat across the sweep because routing is a hash");
    println!("plus a binary search, not an extra hop. Zipf({ZIPF_S}) traffic touches only");
    println!("a fraction of the slots (the head dominates), settled counters are exact");
    println!("on every replica, and the measured key movement for the next scale-out");
    println!("step tracks the consistent-hash ideal 1/(K+1) — the property that makes");
    println!("live rebalancing affordable at this capacity.");
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
