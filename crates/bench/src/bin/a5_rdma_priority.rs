//! A5 — ablation: prioritizing RDMA packets on shared links (§7).
//!
//! §7: "one may prioritize these RDMA packets so that they are less likely
//! to be dropped". In a rack, the remote-buffer servers are ordinary
//! servers that also receive bulk data, so detour WRITEs/READs share the
//! server-facing egress with that data. This ablation runs a burst through
//! the packet-buffer detour while bulk traffic hammers the same server
//! port, with and without strict priority for the RDMA packets.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_bench::table::print_table;
use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, TimeDelta};

struct Out {
    detoured: u64,
    lost_entries: u64,
    delivered: u64,
    sent: u64,
    bulk_delivered_to_host: u64,
    reorders: u64,
    burst_completion_us: f64,
    burst_p99_us: f64,
}

/// Ports: 0 = burst sender, 1 = victim receiver (10G), 2 = memory server
/// (shared with bulk), 3 = bulk sender.
fn probe(high_priority: bool) -> Out {
    let count = 1_500u64;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(8));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    fib.install(host_mac(2), PortId(2)); // bulk data to the server's host side
    fib.install(host_mac(3), PortId(3));
    let mut prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 8_000,
            resume_load_qbytes: 4_000,
        },
        8,
        TimeDelta::from_micros(100),
    );
    if high_priority {
        prog = prog.with_high_priority_rdma();
    }

    let mut b = SimBuilder::new(91);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(), // 12MB: contention delays, it does not drop
        Box::new(prog),
    )));
    // Burst: 20G of 1000B frames toward the 10G victim port.
    let burst = b.add_node(Box::new(TrafficGenNode::new(
        "burst",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17),
            1000,
            Rate::from_gbps(20),
            count,
        ),
    )));
    // Bulk: 39G of 1500B frames toward the memory server's host side —
    // together with the ~20G of detour WRITEs this oversubscribes the 40G
    // server link, building a standing queue the RDMA packets either wait
    // behind (best effort) or jump (strict priority).
    let bulk = b.add_node(Box::new(TrafficGenNode::new(
        "bulk",
        WorkloadSpec {
            flow_id_base: 1000,
            ..WorkloadSpec::simple(
                host_mac(3),
                host_mac(2),
                FiveTuple::new(host_ip(3), host_ip(2), 41_000, 9_100, 17),
                1500,
                Rate::from_gbps(39),
                4_000,
            )
        },
    )));
    let victim = b.add_node(Box::new(SinkNode::new("victim")));
    b.connect(switch, PortId(0), burst, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        victim,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server = b.add_node(Box::new(nic));
    b.connect(
        switch,
        PortId(2),
        server,
        PortId(0),
        LinkSpec::testbed_40g(),
    );
    b.connect(switch, PortId(3), bulk, PortId(0), LinkSpec::testbed_40g());

    let mut sim = b.build();
    sim.schedule_timer(burst, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.schedule_timer(bulk, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let s = sw.program::<PacketBufferProgram>().stats();
    let victim = sim.node::<SinkNode>(victim);
    let lat = victim.latency.summarize().expect("victim received no packets");
    Out {
        detoured: s.stored,
        lost_entries: s.lost_entries,
        delivered: victim.received,
        sent: count,
        bulk_delivered_to_host: sim.node::<RnicNode>(server).stats().cpu_packets,
        reorders: victim.total_reorders(),
        burst_completion_us: victim.last_rx.picos() as f64 / 1e6,
        burst_p99_us: lat.p99.as_micros_f64(),
    }
}

fn main() {
    println!("A5: RDMA priority on a server link shared with 39G of bulk data");
    let mut rows = Vec::new();
    for hp in [false, true] {
        let r = probe(hp);
        rows.push(vec![
            if hp { "high (strict)" } else { "best effort" }.into(),
            r.detoured.to_string(),
            r.lost_entries.to_string(),
            format!("{}/{}", r.delivered, r.sent),
            r.reorders.to_string(),
            format!("{:.0}", r.burst_completion_us),
            format!("{:.0}", r.burst_p99_us),
            r.bulk_delivered_to_host.to_string(),
        ]);
    }
    print_table(
        "RDMA priority vs detour health",
        &[
            "rdma priority",
            "detoured",
            "lost entries",
            "burst delivered",
            "reorders",
            "completion us",
            "p99 us",
            "bulk to host",
        ],
        &rows,
    );
    println!("\nexpectation: the detour's WRITEs/READs wait behind the bulk standing queue");
    println!("without priority (late completion, fat tail); strict priority lets them jump");
    println!("it, at no cost in delivery for either flow (12MB absorbs the bulk queue).");
}
