//! E2 — Fig 3a: "Latency overhead of lookup table primitive".
//!
//! Median end-to-end latency for packet sizes 64–1024 B through (a) the
//! baseline L2 switch and (b) the lookup-table primitive fetching a
//! DSCP-rewrite action from remote memory for every packet. The paper's
//! claim: the primitive "only adds 1-2 us latency on average".

use extmem_apps::baremetal::{
    run_dscp_lookup, run_dscp_lookup_rtt, run_l2_baseline, run_l2_baseline_rtt,
};
use extmem_bench::table::{f2, print_table};
use extmem_types::Rate;

fn main() {
    let sizes = [64usize, 128, 256, 512, 1024];
    let count = 1_000;
    let offered = Rate::from_gbps(1); // light load: latency, not queueing
    println!("E2: Fig 3a — median end-to-end latency, baseline vs lookup primitive");

    let mut rows = Vec::new();
    for &size in &sizes {
        let base = run_l2_baseline(size, count, offered, 31);
        let (with, stats) = run_dscp_lookup(size, count, offered, None, 31);
        assert_eq!(stats.remote_lookups, count);
        rows.push(vec![
            size.to_string(),
            f2(base.median.as_micros_f64()),
            f2(with.median.as_micros_f64()),
            f2(with.median.as_micros_f64() - base.median.as_micros_f64()),
        ]);
    }
    print_table(
        "median one-way latency (us)",
        &[
            "pkt size (B)",
            "baseline L2",
            "lookup primitive",
            "overhead",
        ],
        &rows,
    );

    // The paper's actual instrument was NPtcp, a round-trip measure; the
    // echoed packet traverses the primitive in both directions.
    let mut rows = Vec::new();
    for &size in &sizes {
        let base = run_l2_baseline_rtt(size, 300, 31);
        let (with, _) = run_dscp_lookup_rtt(size, 300, None, 31);
        rows.push(vec![
            size.to_string(),
            f2(base.median.as_micros_f64()),
            f2(with.median.as_micros_f64()),
            f2(with.median.as_micros_f64() - base.median.as_micros_f64()),
        ]);
    }
    print_table(
        "median round-trip latency, NPtcp-style (us)",
        &[
            "pkt size (B)",
            "baseline L2",
            "lookup primitive",
            "overhead",
        ],
        &rows,
    );
    println!("\npaper: one-way overhead of 1-2 us across all sizes (Fig 3a);");
    println!("the RTT overhead is ~2x that, since both directions take the lookup.");
}
