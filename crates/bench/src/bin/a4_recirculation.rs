//! A4 — ablation: packet bouncing (§4) vs local recirculation (§7) for
//! lookup-table misses.
//!
//! §7: "one may recirculate the original packet locally and wait for the
//! pulled entry, instead of depositing the original packet. This can save
//! the bandwidth overhead to the remote memory."
//!
//! Both modes run the same skewed workload with a small cache (so misses
//! keep happening); we compare remote-link bytes, recirculation work and
//! latency.

use extmem_apps::baremetal::{run_gateway, GatewayConfig};
use extmem_apps::workload::FlowPick;
use extmem_bench::table::{f2, print_table};
use extmem_types::Rate;

fn main() {
    println!("A4: lookup miss handling — bounce (deposit packet) vs recirculate");

    let mut rows = Vec::new();
    for &frame in &[128usize, 512, 1024] {
        for recirculate in [false, true] {
            let r = run_gateway(GatewayConfig {
                n_vips: 256,
                pick: FlowPick::Zipf(0.8), // mild skew: plenty of misses
                count: 4_000,
                frame_len: frame,
                offered: Rate::from_gbps(4),
                cache: Some(32),
                recirculate,
                seed: 81,
                ..Default::default()
            });
            assert_eq!(
                r.delivered,
                r.sent,
                "lost packets in {} mode",
                mode(recirculate)
            );
            rows.push(vec![
                frame.to_string(),
                mode(recirculate).into(),
                r.lookup.remote_lookups.to_string(),
                r.lookup.recirc_passes.to_string(),
                (r.to_server_bytes + r.from_server_bytes).to_string(),
                f2(r.latency.median.as_micros_f64()),
                f2(r.latency.p99.as_micros_f64()),
            ]);
        }
    }
    print_table(
        "miss handling vs remote-memory bandwidth",
        &[
            "frame B",
            "mode",
            "remote lookups",
            "recirc passes",
            "remote-link bytes",
            "median us",
            "p99 us",
        ],
        &rows,
    );
    println!("\nexpectation: recirculation cuts remote-link bytes (no packet deposit,");
    println!("16B action reads) at the cost of recirculation passes through the pipeline;");
    println!("the saving grows with packet size.");
}

fn mode(recirc: bool) -> &'static str {
    if recirc {
        "recirculate"
    } else {
        "bounce"
    }
}
