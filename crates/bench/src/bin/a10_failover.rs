//! A10 — replicated pools under server failure (the §8 "fault tolerance"
//! follow-through).
//!
//! The paper's primitives each talk to *one* memory server; a crash there
//! is terminal. The replicated pool layer turns the server into a pool:
//! WRITEs fan out to mirrors, FaA deltas are accumulated and replayed,
//! and a health detector drives failover, probing, and rejoin
//! reconciliation. This bin prices that machinery: what replication costs
//! when nothing fails, and what a crash costs when it does — in failovers,
//! probe/reseed traffic, and replayed deltas — while exactness (settled
//! counters equal to ground truth on every live replica) holds at every
//! point.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_bench::table::print_table;
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, PoolConfig, PoolStats, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

/// What failure to inject into the two-server pool.
#[derive(Clone, Copy)]
enum Fault {
    None,
    MirrorCrash,
    PrimaryCrash,
    PrimaryCrashAndRejoin,
}

struct Out {
    pool: PoolStats,
    ops_issued: u64,
    delivered: u64,
    count: u64,
    exact: bool,
    replicas_equal: bool,
}

/// A replicated state store (primary + mirror), one FaA per packet, with
/// the chosen fault injected mid-run. Exactness is judged against the
/// switch-side oracle after the pool settles.
fn probe(fault: Fault, count: u64) -> Out {
    let counters = 256u64;
    let region = ByteSize::from_bytes(counters * 8);
    let mut nic_a = RnicNode::new("memsrv-a", RnicConfig::at(host_endpoint(2)));
    let mut nic_b = RnicNode::new("memsrv-b", RnicConfig::at(host_endpoint(3)));
    let ch_a = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic_a, region);
    let ch_b = RdmaChannel::setup(switch_endpoint(), PortId(3), &mut nic_b, region);
    let (rkey, base_va) = (ch_a.rkey, ch_a.base_va);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::replicated(
        vec![ch_a, ch_b],
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(30),
            ..Default::default()
        },
        PoolConfig {
            down_threshold: 2,
            probe_interval: TimeDelta::from_micros(100),
            reseed_atomics: true,
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));
    let mut b = SimBuilder::new(191);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            count,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server_a = b.add_node(Box::new(nic_a));
    let server_b = b.add_node(Box::new(nic_b));
    b.connect(switch, PortId(2), server_a, PortId(0), link);
    b.connect(switch, PortId(3), server_b, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // ~1us of traffic per update: the crash lands a quarter into the run,
    // the restart (rejoin case) at the halfway mark.
    let crash_at = TimeDelta::from_micros(count / 4);
    let restart_at = TimeDelta::from_micros(count / 2);
    match fault {
        Fault::None => {}
        Fault::MirrorCrash => sim.schedule_crash(server_b, crash_at),
        Fault::PrimaryCrash => sim.schedule_crash(server_a, crash_at),
        Fault::PrimaryCrashAndRejoin => {
            sim.schedule_crash(server_a, crash_at);
            sim.schedule_restart(server_a, restart_at);
        }
    }
    sim.run_until(Time::from_micros(count) + TimeDelta::from_millis(10));

    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let stats = prog.faa_stats();
    let truth: u64 = prog.oracle.values().sum();
    let dump_a = read_remote_counters(sim.node::<RnicNode>(server_a), rkey, base_va, counters);
    let dump_b = read_remote_counters(sim.node::<RnicNode>(server_b), rkey, base_va, counters);
    // The live replica set depends on the fault: compare against whichever
    // replica is authoritative, and check replica agreement when both live.
    let (live, both_live) = match fault {
        Fault::None | Fault::PrimaryCrashAndRejoin => (&dump_b, true),
        Fault::MirrorCrash => (&dump_a, false),
        Fault::PrimaryCrash => (&dump_b, false),
    };
    let live_sum: u64 = live.iter().sum();
    let sink = sim.node::<SinkNode>(sink);
    Out {
        pool: stats.pool,
        ops_issued: stats.channel.ops_issued,
        delivered: sink.received,
        count,
        exact: prog.is_quiescent() && live_sum == truth && sink.received == count,
        replicas_equal: !both_live || dump_a == dump_b,
    }
}

fn main() {
    println!("A10: replicated state store (primary + mirror) under server failure");
    println!();
    let count = 2_000u64;
    let cases: &[(&str, Fault)] = &[
        ("no fault", Fault::None),
        ("mirror crash", Fault::MirrorCrash),
        ("primary crash", Fault::PrimaryCrash),
        ("crash + rejoin", Fault::PrimaryCrashAndRejoin),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|&(name, fault)| {
            let o = probe(fault, count);
            let p = &o.pool;
            vec![
                name.to_string(),
                o.ops_issued.to_string(),
                p.mirror_writes.to_string(),
                p.failovers.to_string(),
                p.probes.to_string(),
                format!("{}+{}", p.delta_replayed, p.reseed_ops),
                p.rejoins.to_string(),
                format!("{}/{}", o.delivered, o.count),
                if o.exact { "yes" } else { "NO" }.to_string(),
                if o.replicas_equal { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "failover cost per fault case (2000 FaA updates, 2-server pool)",
        &[
            "fault",
            "ops",
            "mirror wr",
            "failovers",
            "probes",
            "replay+reseed",
            "rejoins",
            "delivered",
            "exact",
            "replicas ==",
        ],
        &rows,
    );
    println!();
    println!("expectation: an atomics primitive replicates by delta replay, not WRITE");
    println!("fan-out (mirror wr stays 0), so the no-fault overhead is only the");
    println!("background anti-entropy FaAs. A mirror crash costs nothing on the data");
    println!("path; a primary crash costs one failover plus replayed deltas, and the");
    println!("survivor still settles exactly. Without a restart the pool keeps probing");
    println!("until its probe budget runs out; with one, a probe detects the returning");
    println!("server and reseed copies rebuild it bit-for-bit — failure is bandwidth");
    println!("and latency, never lost or diverged state.");
}
