//! Simulator perf-regression harness: run the fixed scenarios and write
//! `BENCH_simperf.json` (see `extmem_bench::simperf` and DESIGN.md).
//!
//! Usage: `simperf [output.json]` — default output `BENCH_simperf.json` in
//! the current directory. `scripts/perf_check.sh` wraps this.

use extmem_bench::simperf::{run_all, to_json_doc};
use extmem_bench::table::print_table;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_simperf.json".to_string());

    let results = run_all();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.events.to_string(),
                r.packets.to_string(),
                format!("{:.3}", r.wall_seconds),
                format!("{:.0}", r.events_per_sec()),
                format!("{:.0}", r.packets_per_sec()),
            ]
        })
        .collect();
    print_table(
        "simulator performance",
        &[
            "scenario",
            "events",
            "hop packets",
            "wall (s)",
            "events/s",
            "packets/s",
        ],
        &rows,
    );

    let doc = to_json_doc(&results);
    std::fs::write(&out_path, &doc).expect("write perf JSON");
    println!("\nwrote {out_path}");
}
