//! Simulator perf-regression harness: run the fixed scenarios and write
//! `BENCH_simperf.json` (see `extmem_bench::simperf` and DESIGN.md).
//!
//! Usage: `simperf [--sched-stats] [output.json]` — default output
//! `BENCH_simperf.json` in the current directory. `--sched-stats` adds a
//! per-scenario `sched` block (peak queue depth, wheel cascades, dead-timer
//! dispatches, slab/pool hit rates) to the JSON and prints the table.
//! `scripts/perf_check.sh` wraps this and reads either form.

use extmem_bench::simperf::{run_all, to_json_doc};
use extmem_bench::table::print_table;

fn main() {
    let mut with_sched = false;
    let mut out_path = "BENCH_simperf.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--sched-stats" => with_sched = true,
            other => out_path = other.to_string(),
        }
    }

    let results = run_all();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.events.to_string(),
                r.packets.to_string(),
                format!("{:.3}", r.wall_seconds),
                format!("{:.0}", r.events_per_sec()),
                format!("{:.0}", r.packets_per_sec()),
            ]
        })
        .collect();
    print_table(
        "simulator performance",
        &[
            "scenario",
            "events",
            "hop packets",
            "wall (s)",
            "events/s",
            "packets/s",
        ],
        &rows,
    );

    if with_sched {
        let rate = |h: u64, m: u64| {
            if h + m == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * h as f64 / (h + m) as f64)
            }
        };
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let s = &r.sched;
                vec![
                    r.name.to_string(),
                    s.peak_depth.to_string(),
                    s.cascades.to_string(),
                    s.dead_dispatches.to_string(),
                    s.lane_parks.to_string(),
                    rate(s.slab_hits, s.slab_misses),
                    rate(r.pool_hits, r.pool_misses),
                ]
            })
            .collect();
        print_table(
            "scheduler statistics",
            &[
                "scenario",
                "peak depth",
                "cascades",
                "dead timers",
                "lane parks",
                "slab hits",
                "pool hits",
            ],
            &rows,
        );
    }

    let doc = to_json_doc(&results, with_sched);
    std::fs::write(&out_path, &doc).expect("write perf JSON");
    println!("\nwrote {out_path}");
}
