//! Simulator perf-regression harness: run the fixed scenarios and write
//! `BENCH_simperf.json` (see `extmem_bench::simperf` and DESIGN.md).
//!
//! Usage: `simperf [--sched-stats] [--threads N] [output.json]` — default
//! output `BENCH_simperf.json` in the current directory. `--sched-stats`
//! adds a per-scenario `sched` block (peak queue depth, wheel cascades,
//! dead-timer dispatches, slab/pool hit rates) to the JSON and prints the
//! table. `--threads N` runs every scenario under the parallel scheduler
//! backend with `N` workers (the fan-out scenario additionally runs its
//! own fixed 1/2/4-thread ladder regardless); trace digests are
//! backend-invariant, so the digest column must not move with `N`.
//! `scripts/perf_check.sh` wraps this and reads any schema from 1 to 3.

use extmem_bench::simperf::{run_all, to_json_doc};
use extmem_bench::table::print_table;
use extmem_sim::{with_sched_backend, SchedBackend};

fn main() {
    let mut with_sched = false;
    let mut threads = 1usize;
    let mut out_path = "BENCH_simperf.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sched-stats" => with_sched = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().expect("--threads takes a positive integer");
                assert!(threads >= 1, "--threads takes a positive integer");
            }
            other => out_path = other.to_string(),
        }
    }

    let results = if threads > 1 {
        with_sched_backend(SchedBackend::Parallel(threads), run_all)
    } else {
        run_all()
    };

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.threads.to_string(),
                r.events.to_string(),
                r.packets.to_string(),
                format!("{:.3}", r.wall_seconds),
                format!("{:.0}", r.events_per_sec()),
                format!("{:.0}", r.packets_per_sec()),
            ]
        })
        .collect();
    print_table(
        "simulator performance",
        &[
            "scenario",
            "threads",
            "events",
            "hop packets",
            "wall (s)",
            "events/s",
            "packets/s",
        ],
        &rows,
    );

    if with_sched {
        let rate = |h: u64, m: u64| {
            if h + m == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * h as f64 / (h + m) as f64)
            }
        };
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let s = &r.sched;
                vec![
                    r.name.to_string(),
                    s.peak_depth.to_string(),
                    s.cascades.to_string(),
                    s.dead_dispatches.to_string(),
                    s.lane_parks.to_string(),
                    rate(s.slab_hits, s.slab_misses),
                    rate(r.pool_hits, r.pool_misses),
                ]
            })
            .collect();
        print_table(
            "scheduler statistics",
            &[
                "scenario",
                "peak depth",
                "cascades",
                "dead timers",
                "lane parks",
                "slab hits",
                "pool hits",
            ],
            &rows,
        );
    }

    let doc = to_json_doc(&results, with_sched);
    std::fs::write(&out_path, &doc).expect("write perf JSON");
    println!("\nwrote {out_path}");
}
