//! E1 — §5 "Packet buffer primitive": maximum lossless store / forward
//! rates through the remote ring vs native server-to-server RDMA.
//!
//! Paper reports (1500 B MTU frames, 40 Gbps links, CX-3 Pro):
//! store 34.1 Gbps, forward 37.4 Gbps, native baseline "only 4.4% faster".

use extmem_bench::e1::{
    max_lossless, measure_forward_rate, measure_native_read, probe_native_write, probe_store,
    E1_COUNT,
};
use extmem_bench::table::{f1, f2, print_table};
use extmem_types::Rate;

fn main() {
    // Sweep payload rates around the expected ceiling.
    let sweep: Vec<f64> = (0..=20).map(|i| 30.0 + i as f64 * 0.5).collect();

    println!("E1: packet-buffer microbenchmark (1500B frames, {E1_COUNT} per probe)");
    let store = max_lossless(|r| probe_store(r, E1_COUNT), &sweep);
    let forward = measure_forward_rate(20_000);
    let native_w = max_lossless(|r| probe_native_write(r, E1_COUNT), &sweep);
    let native_r = measure_native_read(20_000);

    let rows = vec![
        vec![
            "store (switch→remote ring)".into(),
            f1(store.gbps_f64()),
            "34.1".into(),
        ],
        vec![
            "forward (ring→destination)".into(),
            f1(forward.gbps_f64()),
            "37.4".into(),
        ],
        vec![
            "native RDMA WRITE (server→server)".into(),
            f1(native_w.gbps_f64()),
            "~35.6 (\"4.4% faster\")".into(),
        ],
        vec![
            "native RDMA READ (server→server)".into(),
            f1(native_r.gbps_f64()),
            "~39 (\"4.4% faster\")".into(),
        ],
    ];
    print_table(
        "max lossless rate (Gbps of payload)",
        &["path", "measured", "paper"],
        &rows,
    );

    let gap_store = native_w.gbps_f64() / store.gbps_f64() - 1.0;
    println!(
        "\nnative WRITE vs primitive store: native is {}% faster (paper: 4.4%)",
        f2(gap_store * 100.0)
    );

    // The drop behaviour above the ceiling, for the record.
    let over = probe_store(Rate::from_gbps(40), E1_COUNT);
    println!(
        "at 40.0 Gbps offered: {} of {} frames dropped at the NIC (paper: \"RDMA requests were occasionally dropped at the NIC\")",
        over.lost, E1_COUNT
    );
}
