//! E6 — the paper's capacity-expansion claims (§1, §2):
//!
//! * packet buffer: "increase the switch buffer size from O(10 MB) to
//!   O(10 GB), or by 1000x",
//! * lookup tables: "increases the exact-matching table size by 1000x or
//!   more",
//! * counters: "can increase by 10^5x (e.g., 100 GB DRAM vs. less than
//!   100 MB switch SRAM)".
//!
//! This binary computes the factors from the actual data-structure layouts
//! used by this implementation (ring entries, table slots, counter words),
//! so the claims are grounded in the bytes the primitives really spend.

use extmem_bench::table::print_table;
use extmem_types::ByteSize;

fn main() {
    println!("E6: memory-hierarchy expansion factors (from implemented layouts)");

    // On-chip resources of a Tofino-class ToR (paper: "tens of MB").
    let sram_buffer = ByteSize::from_mb(12); // packet buffer
    let sram_tables = ByteSize::from_mb(20); // match-action SRAM
    let sram_counters = ByteSize::from_mb(1); // register/counter budget

    // Remote pools: the paper suggests O(1 GB) per server; a rack has
    // dozens of servers. Use 16 servers x 4 GB as the worked example and
    // 100 GB for the paper's counter example.
    let remote_buffer = ByteSize::from_gb(16 * 4);
    let remote_tables = ByteSize::from_gb(16 * 4);
    let remote_counters = ByteSize::from_gb(100);

    // Implemented layouts.
    let ring_entry = 2048u64; // 6B header + full frame, rounded
    let table_entry = 2048u64; // 16B action + 2B len + bounced packet
    let counter = 8u64;

    let rows = vec![
        capacity_row(
            "packet buffer (1500B frames)",
            sram_buffer,
            remote_buffer,
            1500,
            ring_entry,
        ),
        capacity_row(
            "exact-match table entries",
            sram_tables,
            remote_tables,
            64,
            table_entry,
        ),
        capacity_row(
            "64-bit counters",
            sram_counters,
            remote_counters,
            counter,
            counter,
        ),
    ];
    print_table(
        "capacity: on-chip SRAM vs remote DRAM",
        &[
            "resource",
            "SRAM",
            "entries",
            "remote DRAM",
            "entries",
            "factor",
        ],
        &rows,
    );

    println!("\npaper: buffer x1000 (10MB->10GB), tables x1000+, counters 100MB->100GB class");
    println!("note: remote table/buffer entries cost more bytes than SRAM entries (they embed");
    println!(
        "the bounced packet / full frame), which is why the factor is below the raw byte ratio."
    );
}

fn capacity_row(
    name: &str,
    sram: ByteSize,
    remote: ByteSize,
    sram_entry: u64,
    remote_entry: u64,
) -> Vec<String> {
    let local_entries = sram.bytes() / sram_entry;
    let remote_entries = remote.bytes() / remote_entry;
    vec![
        name.into(),
        sram.to_string(),
        human(local_entries),
        remote.to_string(),
        human(remote_entries),
        format!("x{}", human(remote_entries / local_entries.max(1))),
    ]
}

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
