//! A6 — application study: in-network key-value serving (the §2.2 NetCache
//! aside) over the remote lookup table.
//!
//! GETs for cached keys are answered by the switch in one RTT to the ToR;
//! misses cost one more round trip — to the server's *RNIC*, not its CPU.
//! The paper's pitch is that this second tier replaces NetCache's software
//! slow path; the table quantifies it across skews and cache sizes.

use extmem_apps::kvcache::run_kv;
use extmem_bench::table::{f2, f3, print_table};

fn main() {
    println!("A6: in-network KV over remote memory (1024 keys, 5000 GETs, closed loop)");

    for &skew in &[0.6f64, 0.99, 1.3] {
        let mut rows = Vec::new();
        for cache in [None, Some(16usize), Some(64), Some(256)] {
            let r = run_kv(1024, skew, 5_000, cache, 17);
            assert_eq!(r.wrong, 0, "wrong values served");
            assert_eq!(r.server_cpu_packets, 0, "server CPU touched");
            let hit = r.lookup.cache_hits as f64
                / (r.lookup.cache_hits + r.lookup.remote_lookups).max(1) as f64;
            rows.push(vec![
                cache.map_or("off".into(), |c| c.to_string()),
                f3(hit),
                r.lookup.remote_lookups.to_string(),
                f2(r.latency.median.as_micros_f64()),
                f2(r.latency.p99.as_micros_f64()),
            ]);
        }
        print_table(
            &format!("zipf skew = {skew}"),
            &[
                "cache entries",
                "switch-served frac",
                "remote GETs",
                "median RTT us",
                "p99 RTT us",
            ],
            &rows,
        );
    }
    println!("\nevery GET is answered with the correct value; the server CPU handles zero");
    println!("packets in all configurations — the remote tier replaces the software");
    println!("slow path NetCache-class systems fall back to.");
}
