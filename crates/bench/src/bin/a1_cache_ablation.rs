//! A1 — ablation: the lookup primitive's optional local SRAM cache
//! (§4: "the switch can (optionally) cache the table entry in local SRAM").
//!
//! Sweeps cache capacity against traffic skew and reports hit rate, remote
//! lookups and median latency. The design point: with realistic Zipf skew a
//! tiny cache absorbs most lookups, so the remote table only serves the
//! long tail — the memory-hierarchy argument of the paper in miniature.

use extmem_apps::baremetal::{run_gateway, GatewayConfig};
use extmem_apps::workload::FlowPick;
use extmem_bench::table::{f2, f3, print_table};
use extmem_types::Rate;

fn main() {
    println!("A1: lookup-table local-cache ablation (64 VIP flows, 4000 packets)");

    for &skew in &[0.0f64, 0.9, 1.3] {
        let mut rows = Vec::new();
        for cache in [None, Some(4usize), Some(16), Some(64)] {
            let r = run_gateway(GatewayConfig {
                n_vips: 64,
                pick: if skew == 0.0 {
                    FlowPick::Uniform
                } else {
                    FlowPick::Zipf(skew)
                },
                count: 4_000,
                frame_len: 256,
                offered: Rate::from_gbps(5),
                cache,
                seed: 51,
                ..Default::default()
            });
            rows.push(vec![
                cache.map_or("off".into(), |c| c.to_string()),
                f3(r.cache_hit_rate),
                r.lookup.remote_lookups.to_string(),
                f2(r.latency.median.as_micros_f64()),
                f2(r.latency.p99.as_micros_f64()),
            ]);
            assert_eq!(r.delivered, r.sent);
            assert_eq!(r.server_cpu_packets, 0);
        }
        print_table(
            &format!(
                "skew = {} ({})",
                skew,
                if skew == 0.0 { "uniform" } else { "zipf" }
            ),
            &[
                "cache entries",
                "hit rate",
                "remote lookups",
                "median us",
                "p99 us",
            ],
            &rows,
        );
    }
    println!("\nexpectation: hit rate and latency improve with cache size; gains grow with skew");
}
