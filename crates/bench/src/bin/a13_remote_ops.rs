//! A13 — remote-op ISA A/B: dependent-access chains in one RTT.
//!
//! The responder's op engine (indexed/indirect READ, hash-probe-and-fetch,
//! conditional WRITE, bounded gather/walk) collapses every dependent-access
//! chain the switch primitives issue into a single request/response
//! exchange. Two sweeps measure the claim against the verb baseline (the
//! `RemoteOps` knob off):
//!
//! * **LPM walk depth 1–4** — verb mode issues one rung READ per level
//!   (pipelined on the QP, so RTTs-per-miss equals the ladder depth and
//!   each extra rung costs a full `per_op_overhead` in the server NIC's
//!   service pipeline plus request wire bytes); the gather/walk op reads
//!   every rung inside the responder for one `ext_op_step` each, so it
//!   pays exactly 1.0 RTTs-per-miss and its p99 pulls ahead of the verb
//!   ladder from depth 2 on.
//! * **Cuckoo lookups under filter pressure** — verb mode stays exact only
//!   because installs keep the switch-side counting filter truthful: every
//!   would-be false positive forcibly relocates its victim key to the
//!   secondary bucket (`fp_moves`). Shrinking the filter makes that
//!   maintenance bill explode and packs the table's secondary buckets. The
//!   hash-probe-and-fetch op never consults the filter — the responder
//!   checks both candidate buckets in the same exchange — so lookups stay
//!   exact at 1.0 RTTs-per-miss with zero punts at any filter size, and
//!   the filter plus its relocation machinery can come off the miss path
//!   entirely.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{Arrival, FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_apps::LatencySummary;
use extmem_bench::table::{f2, print_table};
use extmem_core::lookup::{install_cuckoo_image, ActionEntry, LookupTableProgram, LookupStats};
use extmem_core::lpm::{install_remote_route, slots_per_level, LpmStats, RemoteLpmProgram};
use extmem_core::{CuckooConfig, CuckooDirectory, Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode, RnicStats};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, TimeDelta};

const COUNT: u64 = 2_000;

/// One LPM leg: a depth-`levels.len()` ladder with no route cache, every
/// packet a full remote walk. Returns the program stats, the sink's
/// latency summary, and the table server's NIC stats.
fn run_lpm(levels: &[u8], remote_ops: bool) -> (LpmStats, LatencySummary, RnicStats) {
    let mut nic = RnicNode::new("routesrv", RnicConfig::at(host_endpoint(2)));
    let region = ByteSize::from_mb(1);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);
    let spl = slots_per_level(region.bytes(), levels);
    let dst_ip = 0x0a010203u32;
    let mut action = ActionEntry::set_dscp(32);
    action.port_override = Some(PortId(1));
    install_remote_route(&mut nic, &channel, levels, spl, dst_ip, levels[0], action);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = RemoteLpmProgram::new(fib, channel, levels.to_vec(), None)
        .with_remote_ops(remote_ops);

    let mut b = SimBuilder::new(71);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let flow = FiveTuple::new(host_ip(0), dst_ip, 5000, 9000, 17);
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 256, Rate::from_gbps(2), COUNT),
    )));
    let mut sink = SinkNode::new("sink");
    sink.expect_dscp = Some(32);
    let sink = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let sink = sim.node::<SinkNode>(sink);
    assert_eq!(sink.received, COUNT, "packets lost");
    assert_eq!(sink.dscp_mismatch, 0, "wrong rung won");
    let lat = sink.latency.summarize().expect("traffic flowed");
    let sw: &SwitchNode = sim.node(switch);
    let stats = sw.program::<RemoteLpmProgram>().stats();
    (stats, lat, sim.node::<RnicNode>(srv).stats())
}

/// One cuckoo leg: 160 resident flows (62% load), round-robin traffic, no
/// cache, filter sized by `filter_cells`. Also returns the FP-avoidance
/// relocations the installs had to pay to keep the filter truthful.
fn run_cuckoo(filter_cells: usize, remote_ops: bool) -> (LookupStats, LatencySummary, u32) {
    const DSCP: u8 = 46;
    const FLOWS: u16 = 160;
    let cfg = CuckooConfig {
        buckets: 64,
        filter_cells,
        filter_hashes: 2,
        max_plan_steps: 64,
    };
    let mut dir = CuckooDirectory::new(cfg);
    let flows: Vec<FiveTuple> = (0..FLOWS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    let mut fp_moves = 0u32;
    for f in &flows {
        let plan = dir.plan_insert(*f, ActionEntry::set_dscp(DSCP)).expect("fits");
        fp_moves += plan.fp_moves;
    }
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    install_cuckoo_image(&mut nic, &channel, &dir);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::cuckoo(fib, channel, dir, None).with_remote_ops(remote_ops);

    let mut b = SimBuilder::new(71);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(2)),
        arrival: Arrival::Paced,
        count: COUNT,
        seed: 9,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let sink = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), table, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let sink = sim.node::<SinkNode>(sink);
    assert_eq!(sink.received, COUNT, "packets lost");
    let lat = sink.latency.summarize().expect("traffic flowed");
    let sw: &SwitchNode = sim.node(switch);
    (sw.program::<LookupTableProgram>().stats(), lat, fp_moves)
}

fn main() {
    println!("A13: remote-op ISA A/B — one RTT per dependent-access chain ({COUNT} packets/leg)");

    // --- LPM ladder depth sweep ------------------------------------------
    let ladders: [&[u8]; 4] = [&[32], &[32, 24], &[32, 24, 16], &[32, 24, 16, 8]];
    let mut rows = Vec::new();
    for levels in ladders {
        let depth = levels.len();
        let (vs, vlat, vnic) = run_lpm(levels, false);
        let (rs, rlat, rnic) = run_lpm(levels, true);
        assert_eq!(
            vs.rtts_per_miss(),
            Some(depth as f64),
            "verb mode must pay one READ per rung: {vs:?}"
        );
        assert_eq!(
            rs.rtts_per_miss(),
            Some(1.0),
            "gather/walk must be one RTT at depth {depth}: {rs:?}"
        );
        assert_eq!(rnic.ext_ops, COUNT, "every miss must run in the op engine");
        assert_eq!(
            rnic.ext_op_steps,
            COUNT * depth as u64,
            "the op engine must still perform one rung access per level"
        );
        assert_eq!(vnic.ext_ops, 0, "verb leg must not touch the op engine");
        if depth >= 2 {
            assert!(
                rlat.p99 < vlat.p99,
                "one-RTT walk must beat {depth} serialized RTTs at p99: \
                 remote {:?} vs verb {:?}",
                rlat.p99,
                vlat.p99
            );
        }
        rows.push(vec![
            depth.to_string(),
            format!("{:.1}", vs.rtts_per_miss().unwrap()),
            f2(vlat.median.as_micros_f64()),
            f2(vlat.p99.as_micros_f64()),
            format!("{:.1}", rs.rtts_per_miss().unwrap()),
            f2(rlat.median.as_micros_f64()),
            f2(rlat.p99.as_micros_f64()),
            f2(vlat.p99.as_micros_f64() - rlat.p99.as_micros_f64()),
        ]);
    }
    print_table(
        "LPM walk: verb rungs vs one gather/walk op",
        &[
            "depth",
            "verb RTT/miss",
            "verb med us",
            "verb p99 us",
            "ops RTT/miss",
            "ops med us",
            "ops p99 us",
            "p99 saved us",
        ],
        &rows,
    );

    // --- cuckoo filter-pressure sweep ------------------------------------
    let mut rows = Vec::new();
    let mut fp_by_cells = Vec::new();
    for cells in [4096usize, 512, 96] {
        let (vs, vlat, vfp) = run_cuckoo(cells, false);
        let (rs, rlat, rfp) = run_cuckoo(cells, true);
        assert_eq!(vfp, rfp, "both legs install into the same directory");
        fp_by_cells.push(vfp);
        assert_eq!(
            rs.rtts_per_miss(),
            Some(1.0),
            "hash-probe must be one RTT with {cells} filter cells: {rs:?}"
        );
        assert_eq!(
            rs.slow_path, 0,
            "remote-op lookups must not punt resident keys: {rs:?}"
        );
        assert_eq!(
            vs.slow_path, 0,
            "fp-avoidance relocations keep verb lookups exact: {vs:?}"
        );
        rows.push(vec![
            cells.to_string(),
            vfp.to_string(),
            format!("{:.2}", vs.rtts_per_miss().unwrap()),
            vs.filter_secondary_probes.to_string(),
            f2(vlat.p99.as_micros_f64()),
            format!("{:.2}", rs.rtts_per_miss().unwrap()),
            rs.filter_secondary_probes.to_string(),
            f2(rlat.p99.as_micros_f64()),
        ]);
    }
    assert!(
        fp_by_cells.last() > fp_by_cells.first(),
        "shrinking the filter must raise the install-time relocation bill: {fp_by_cells:?}"
    );
    print_table(
        "cuckoo lookup: filter-steered READ vs hash-probe-and-fetch (punts 0 in both modes)",
        &[
            "filter cells",
            "install fp-moves",
            "verb RTT/miss",
            "verb 2nd-bkt",
            "verb p99 us",
            "ops RTT/miss",
            "ops 2nd-bkt",
            "ops p99 us",
        ],
        &rows,
    );

    println!(
        "\nverb mode's exactness is bought at install time: {} fp-avoidance",
        fp_by_cells.last().unwrap()
    );
    println!(
        "relocations at 96 filter cells vs {} at 4096. The hash-probe op needs",
        fp_by_cells.first().unwrap()
    );
    println!("none of that machinery — the responder scans both buckets in one RTT.");

    println!("\nexpectation: the ops legs hold 1.0 RTTs-per-miss at every depth and");
    println!("every filter size, with zero punts; verb p99 grows with ladder depth.");
}
