//! Minimal fixed-width table rendering for harness output.

/// Print a titled table: a header row and data rows, columns padded to the
/// widest cell. Output is plain text that reads well in a terminal and
/// pastes cleanly into EXPERIMENTS.md.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let render = |cells: Vec<&str>| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", line.join("  "));
    };
    render(headers.to_vec());
    render(widths.iter().map(|_| "-").collect::<Vec<_>>());
    for row in rows {
        render(row.iter().map(String::as_str).collect());
    }
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            "demo",
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        print_table("demo", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
