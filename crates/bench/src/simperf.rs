//! Simulator performance harness (the perf-regression gate).
//!
//! Eight fixed scenarios exercise the hot paths end to end:
//!
//! * `e1_write_read_loop` — the §5 packet-buffer store/drain loop: every
//!   frame is encapsulated into an RDMA WRITE, ring-buffered on the memory
//!   server, then pulled back through the READ chain (detour path),
//! * `incast` — the §2.1 rescue: 8 line-rate senders into one drain port
//!   with the detour striped over 9 memory servers (forward + detour under
//!   congestion),
//! * `lookup_miss_storm` — the one-RTT cuckoo lookup with caching
//!   disabled: every packet pays exactly one filter-steered bucket READ
//!   (the direct-hash ablation survives as `lookup_miss_storm_direct`,
//!   digest-pinned but not part of the baseline),
//! * `remote_ops` — the same miss storm with the `RemoteOps` knob on:
//!   every miss is one hash-probe-and-fetch op through the responder's op
//!   engine (both candidate buckets scanned server-side, no switch-side
//!   filter on the path), asserted exact at 1.0 RTTs-per-miss with zero
//!   punts and every request priced through the ext-op service model,
//! * `insert_churn` — live cuckoo inserts/deletes (scripted sliding
//!   window) under Zipf traffic: the relocation machinery's READ-verify +
//!   WRITE displacements priced on the same wire as the lookups, with the
//!   no-transient-miss invariant asserted (zero punts, reads-per-miss
//!   exactly 1.0),
//! * `faa_storm` — the §4 state-store primitive overdriven past the NIC's
//!   atomic rate: the outstanding-atomics cap plus local accumulation
//!   (merge/flush/ACK machinery) alongside line forwarding,
//! * `loss_sweep` — the packet-buffer detour over a lossy memory-server
//!   link at 0.1% and 1% drop: the reliability layer's timeout/retransmit/
//!   dedup machinery priced on the hot path, with exact recovery asserted,
//! * `server_failover` — a replicated state store (primary + mirror)
//!   through a primary crash, failover, restart, and reseeded rejoin under
//!   live FaA load: the pool layer's health detection, mirror fan-out,
//!   delta replay, and reseed traffic priced end to end, with both
//!   replicas asserted bit-for-bit exact.
//!
//! Each scenario runs a fixed deterministic workload to quiescence; the
//! simulated work is therefore constant across runs and machines, and the
//! wall-clock time it takes is the measurement. [`run_scenario`] reports
//! events/sec and (per-hop) packets/sec; `scripts/perf_check.sh` compares a
//! fresh run against the committed `BENCH_simperf.json` baseline and fails
//! on regression.

use extmem_apps::incast::{run_incast, IncastConfig, RemoteBufferSpec};
use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{Arrival, FlowPick, FlowSet, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::shard::ShardedStateStoreProgram;
use extmem_core::lookup::{
    install_cuckoo_image, install_remote_action, ActionEntry, ChurnScript, ControlOp,
    LookupTableProgram,
};
use extmem_core::packet_buffer::{Mode, PacketBufferProgram, TOKEN_START_LOADING};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{CuckooConfig, CuckooDirectory, Fib, L2Program, PoolConfig, RdmaChannel, ReliableConfig};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{
    current_sched_threads, with_sched_backend, FaultSpec, LinkSpec, SchedBackend, SchedStats,
    FabricSpec, SimBuilder, Simulator,
};
use extmem_switch::switch::program_token;
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};
use std::time::Instant;

/// One scenario's measurement.
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Scenario name (stable; keys the JSON baseline).
    pub name: &'static str,
    /// Simulator events processed.
    pub events: u64,
    /// Per-hop packet deliveries summed over every link.
    pub packets: u64,
    /// Simulated time covered.
    pub sim_seconds: f64,
    /// Wall-clock time the run took.
    pub wall_seconds: f64,
    /// Trace digest of the run — a determinism fingerprint, identical for
    /// any scheduler backend and any machine (multi-sim scenarios fold the
    /// per-run digests).
    pub digest: u64,
    /// Scheduler counters (peak queue depth, wheel cascades, dead-timer
    /// dispatches, event-slab hit rate).
    pub sched: SchedStats,
    /// Frame-pool hits during the run (`extmem_wire::pool` delta).
    pub pool_hits: u64,
    /// Frame-pool misses during the run.
    pub pool_misses: u64,
    /// Scheduler worker threads the scenario ran with (1 for the
    /// sequential backends). Keys the per-thread baseline rows.
    pub threads: usize,
}

impl PerfResult {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }

    /// Per-hop packet deliveries per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_seconds
    }

    /// One JSON object, single line (parsed by `scripts/perf_check.sh`).
    /// With `with_sched`, a `sched` sub-object carries the scheduler and
    /// pool counters (`simperf --sched-stats`).
    pub fn to_json(&self, with_sched: bool) -> String {
        let mut out = format!(
            "{{\"events\": {}, \"packets\": {}, \"sim_seconds\": {:.6}, \"wall_seconds\": {:.6}, \"events_per_sec\": {:.1}, \"packets_per_sec\": {:.1}, \"digest\": \"{:016x}\", \"threads\": {}",
            self.events,
            self.packets,
            self.sim_seconds,
            self.wall_seconds,
            self.events_per_sec(),
            self.packets_per_sec(),
            self.digest,
            self.threads
        );
        if with_sched {
            let s = &self.sched;
            let slab_rate = hit_rate(s.slab_hits, s.slab_misses);
            let pool_rate = hit_rate(self.pool_hits, self.pool_misses);
            out.push_str(&format!(
                ", \"sched\": {{\"peak_depth\": {}, \"cascades\": {}, \"dead_dispatches\": {}, \"lane_parks\": {}, \"slab_hit_rate\": {:.4}, \"pool_hit_rate\": {:.4}, \"slots_released\": {}}}",
                s.peak_depth,
                s.cascades,
                s.dead_dispatches,
                s.lane_parks,
                slab_rate,
                pool_rate,
                s.slots_released
            ));
        }
        out.push('}');
        out
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        return 0.0;
    }
    hits as f64 / (hits + misses) as f64
}

/// Process-global frame-pool counters, sampled around a run.
fn pool_counts() -> (u64, u64) {
    (
        extmem_wire::pool::hit_count(),
        extmem_wire::pool::miss_count(),
    )
}

/// Render all results as the `BENCH_simperf.json` document (schema 3:
/// schema 2 plus a `host` block — logical cores, so per-thread rows can be
/// judged against the machine that produced them — and a per-scenario
/// `threads` count; `scripts/perf_check.sh` reads schemas 1 through 3).
pub fn to_json_doc(results: &[PerfResult], with_sched: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"schema\": 3,\n  \"host\": {{\"logical_cores\": {cores}}},\n  \"scenarios\": {{\n"
    );
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            r.name,
            r.to_json(with_sched),
            comma
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn time_run(
    name: &'static str,
    sim: &mut Simulator,
    drive: impl FnOnce(&mut Simulator),
) -> PerfResult {
    let (h0, m0) = pool_counts();
    let start = Instant::now();
    drive(sim);
    let wall = start.elapsed().as_secs_f64();
    let (h1, m1) = pool_counts();
    PerfResult {
        name,
        events: sim.events_processed(),
        packets: sim.packets_delivered(),
        sim_seconds: sim.now().saturating_since(Time::ZERO).as_secs_f64(),
        wall_seconds: wall,
        digest: sim.trace_digest(),
        sched: sim.sched_stats(),
        pool_hits: h1 - h0,
        pool_misses: m1 - m0,
        threads: current_sched_threads(),
    }
}

/// E1 write/read loop: store `count` 1500 B frames into the remote ring
/// (Manual mode), then drain them through the READ chain.
pub fn e1_write_read_loop(count: u64) -> PerfResult {
    const ENTRY: u64 = 1516;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let region = ByteSize::from_bytes((count + 8) * ENTRY);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        ENTRY,
        Mode::Manual,
        8,
        TimeDelta::from_millis(10),
    );

    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17);
    let mut b = SimBuilder::new(21);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            flow,
            1500,
            Rate::from_gbps(25),
            count,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let store_time = TimeDelta::from_secs_f64(count as f64 * 1500.0 * 8.0 / 25e9 + 1e-3);
    let r = time_run("e1_write_read_loop", &mut sim, |sim| {
        sim.run_until(Time::ZERO + store_time);
        sim.schedule_timer(switch, TimeDelta::ZERO, program_token(TOKEN_START_LOADING));
        sim.run_to_quiescence();
    });
    assert_eq!(
        sim.node::<SinkNode>(sink).received,
        count,
        "forward path lost frames"
    );
    r
}

/// The CI-scale incast with the default 9-server remote buffer.
pub fn incast_scenario() -> PerfResult {
    let (h0, m0) = pool_counts();
    let res = run_incast(IncastConfig::small(Some(RemoteBufferSpec::default())));
    let (h1, m1) = pool_counts();
    assert_eq!(res.delivered, res.sent, "remote buffer must stay lossless");
    PerfResult {
        name: "incast",
        events: res.events,
        packets: res.hop_packets,
        sim_seconds: res.completion.as_secs_f64(),
        // Run-only wall time (topology construction excluded), measured
        // inside `run_incast` around the event loop itself.
        wall_seconds: res.run_wall_seconds,
        digest: res.trace_digest,
        sched: res.sched,
        pool_hits: h1 - h0,
        pool_misses: m1 - m0,
        threads: current_sched_threads(),
    }
}

/// Lookup-miss storm, one-RTT cuckoo mode: 256 installed flows, caching
/// disabled, every packet pays exactly one bucket READ (the filter steers
/// each probe to the bucket its key lives in). The run asserts the tentpole
/// metric — reads-per-miss == 1.0 with zero slow-path punts.
pub fn lookup_miss_storm(count: u64) -> PerfResult {
    const DSCP: u8 = 46;
    const FLOWS: u16 = 256;
    let table_port = PortId(2);
    let mut dir = CuckooDirectory::new(CuckooConfig::for_capacity(FLOWS as u64));
    let flows: Vec<FiveTuple> = (0..FLOWS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP))
            .expect("pre-population fits");
    }
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        table_port,
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    install_cuckoo_image(&mut nic, &channel, &dir);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::cuckoo(fib, channel, dir, None);

    let mut b = SimBuilder::new(31);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(5)),
        arrival: Arrival::Paced,
        count,
        seed: 9,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let server = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, table_port, table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let r = time_run("lookup_miss_storm", &mut sim, |sim| {
        sim.run_to_quiescence();
    });
    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let stats = sw.program::<LookupTableProgram>().stats();
    assert_eq!(
        stats.remote_lookups, count,
        "every packet must take the remote path"
    );
    assert_eq!(stats.slow_path, 0, "no punts in cuckoo mode: {stats:?}");
    assert_eq!(stats.bucket_misses, 0, "filter misdirected a probe: {stats:?}");
    assert_eq!(
        stats.reads_per_miss(),
        1.0,
        "the one-RTT property: exactly one READ per miss: {stats:?}"
    );
    assert_eq!(
        sim.node::<SinkNode>(server).received,
        count,
        "forward path lost frames"
    );
    r
}

/// The direct-hash ablation baseline: the pre-cuckoo lookup wire behavior
/// (one flow hashed straight to its slot, no filter, no relocation). Kept
/// out of [`run_all`] — its digest pins the old wire format and the
/// backend-equivalence suite replays it.
pub fn lookup_miss_storm_direct(count: u64) -> PerfResult {
    const DSCP: u8 = 46;
    let table_port = PortId(2);
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        table_port,
        &mut nic,
        ByteSize::from_bytes(4096 * 2048),
    );
    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 80, 17);
    install_remote_action(&mut nic, &channel, 2048, &flow, ActionEntry::set_dscp(DSCP));

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::new(fib, channel, 2048, None);

    let mut b = SimBuilder::new(31);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "client",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            flow,
            256,
            Rate::from_gbps(5),
            count,
        ),
    )));
    let server = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, table_port, table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let r = time_run("lookup_miss_storm_direct", &mut sim, |sim| {
        sim.run_to_quiescence();
    });
    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    assert_eq!(
        sw.program::<LookupTableProgram>().stats().remote_lookups,
        count,
        "every packet must take the remote path"
    );
    r
}

/// The remote-op ISA leg of the miss storm: identical traffic and table to
/// [`lookup_miss_storm`], but with the `RemoteOps` knob on — every miss
/// issues one hash-probe-and-fetch op that the responder's op engine
/// resolves against both candidate buckets in a single exchange. Joins the
/// committed baseline so the op engine's modeled service cost is
/// perf-gated alongside the verb path it replaces.
pub fn remote_ops(count: u64) -> PerfResult {
    const DSCP: u8 = 46;
    const FLOWS: u16 = 256;
    let table_port = PortId(2);
    let mut dir = CuckooDirectory::new(CuckooConfig::for_capacity(FLOWS as u64));
    let flows: Vec<FiveTuple> = (0..FLOWS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP))
            .expect("pre-population fits");
    }
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        table_port,
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    install_cuckoo_image(&mut nic, &channel, &dir);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::cuckoo(fib, channel, dir, None).with_remote_ops(true);

    let mut b = SimBuilder::new(31);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(5)),
        arrival: Arrival::Paced,
        count,
        seed: 9,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let server = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, table_port, table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let r = time_run("remote_ops", &mut sim, |sim| {
        sim.run_to_quiescence();
    });
    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let stats = sw.program::<LookupTableProgram>().stats();
    assert_eq!(
        stats.remote_lookups, count,
        "every packet must take the remote path"
    );
    assert_eq!(stats.slow_path, 0, "no punts in remote-ops mode: {stats:?}");
    assert_eq!(
        stats.rtts_per_miss(),
        Some(1.0),
        "one op exchange per miss: {stats:?}"
    );
    assert_eq!(
        stats.reads_per_lookup(),
        Some(1.0),
        "one response per miss: {stats:?}"
    );
    let nic_stats = sim.node::<RnicNode>(table).stats();
    assert_eq!(
        nic_stats.ext_ops, count,
        "every miss must run in the op engine"
    );
    assert_eq!(nic_stats.cpu_packets, 0, "ops must bypass the server CPU");
    assert_eq!(
        sim.node::<SinkNode>(server).received,
        count,
        "forward path lost frames"
    );
    r
}

/// Insert churn: live table churn under Zipf traffic. 140 resident flows
/// carry the load while a scripted sequence inserts and deletes 96 disjoint
/// keys (sliding window of 8) through the relocation machinery — every
/// displacement is a READ-verify + WRITE on the same wire as the lookups.
/// The run asserts the no-transient-miss invariant end to end: zero punts,
/// reads-per-miss exactly 1.0 throughout the storm, and the remote region
/// bit-for-bit equal to the directory image afterwards.
pub fn insert_churn(count: u64) -> PerfResult {
    const DSCP: u8 = 46;
    const TRAFFIC_KEYS: u16 = 140;
    const CHURN_KEYS: u16 = 96;
    const WINDOW: usize = 8;
    let table_port = PortId(2);
    // 64 buckets = 256 slots: ~58% peak load, enough pressure that inserts
    // regularly land in full primary buckets and relocate residents.
    let cfg = CuckooConfig {
        buckets: 64,
        filter_cells: 2048,
        filter_hashes: 2,
        max_plan_steps: 64,
    };
    let mut dir = CuckooDirectory::new(cfg);
    let flows: Vec<FiveTuple> = (0..TRAFFIC_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP))
            .expect("pre-population fits");
    }
    let churn_keys: Vec<FiveTuple> = (0..CHURN_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 50_000 + i, 80, 17))
        .collect();
    let mut ops = Vec::new();
    for (i, k) in churn_keys.iter().enumerate() {
        ops.push(ControlOp::Insert(*k, ActionEntry::set_dscp(12)));
        if i >= WINDOW {
            ops.push(ControlOp::Remove(churn_keys[i - WINDOW]));
        }
    }
    for k in &churn_keys[CHURN_KEYS as usize - WINDOW..] {
        ops.push(ControlOp::Remove(*k));
    }
    let script = ChurnScript {
        ops,
        period: TimeDelta::from_micros(2),
    };

    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        table_port,
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    let (rkey, base_va) = (channel.rkey, channel.base_va);
    install_cuckoo_image(&mut nic, &channel, &dir);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::cuckoo(fib, channel, dir, None).with_churn(script);

    let mut b = SimBuilder::new(37);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::Zipf(1.1),
        frame_len: 256,
        offered: Some(Rate::from_gbps(5)),
        arrival: Arrival::Paced,
        count,
        seed: 13,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let server = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, table_port, table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.schedule_timer(
        switch,
        TimeDelta::from_micros(5),
        program_token(extmem_core::lookup::TOKEN_CHURN),
    );
    let r = time_run("insert_churn", &mut sim, |sim| {
        sim.run_to_quiescence();
    });
    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let prog = sw.program::<LookupTableProgram>();
    let stats = prog.stats();
    assert_eq!(
        sim.node::<SinkNode>(server).received,
        count,
        "forward path lost frames"
    );
    assert_eq!(stats.remote_lookups, count, "cacheless: all remote");
    assert_eq!(stats.slow_path, 0, "transient miss punted: {stats:?}");
    assert_eq!(stats.bucket_misses, 0, "filter misdirected a probe: {stats:?}");
    assert_eq!(stats.reads_per_miss(), 1.0, "one READ per miss: {stats:?}");
    assert!(
        stats.relocation_moves > 0,
        "churn never displaced a resident: {stats:?}"
    );
    assert_eq!(stats.inserts_rejected, 0, "table full mid-script: {stats:?}");
    assert_eq!(stats.inserts_applied, CHURN_KEYS as u64, "{stats:?}");
    assert_eq!(stats.removes_applied, CHURN_KEYS as u64, "{stats:?}");
    assert_eq!(stats.verify_mismatches, 0, "directory drifted: {stats:?}");
    assert!(prog.relocation_idle(), "relocation work leaked: {stats:?}");
    let dir = prog.directory().expect("cuckoo mode");
    let image = dir.encode_region();
    let remote = sim
        .node::<RnicNode>(table)
        .region(rkey)
        .read(base_va, image.len() as u64)
        .expect("region in bounds");
    assert_eq!(remote, &image[..], "remote region diverged from directory");
    r
}

/// Fetch-and-Add storm: 16 UDP flows at 10 G into the state-store primitive
/// (§4). The offered ~4.9 M updates/s exceed the NIC's 1.7 M atomics/s, so
/// the outstanding-atomics cap forces local accumulation and the engine's
/// merge/flush machinery runs hot alongside forwarding.
pub fn faa_storm(count: u64) -> PerfResult {
    let server_port = PortId(2);
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let counters = 4096u64;
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        server_port,
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let (rkey, base_va) = (channel.rkey, channel.base_va);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(channel, FaaConfig::default());
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(20));

    let flows: Vec<FiveTuple> = (0..16)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 9_000, 17))
        .collect();
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(10)),
        arrival: Arrival::Paced,
        count,
        seed: 5,
        flow_id_base: 0,
    };

    let mut b = SimBuilder::new(41);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new("gen", spec)));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, server_port, srv, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // The flush tick re-arms forever, so drive to a fixed deadline: the
    // send time at the offered rate plus a generous settle window.
    let send_time = TimeDelta::from_secs_f64(count as f64 * 256.0 * 8.0 / 10e9);
    let deadline = Time::ZERO + send_time + TimeDelta::from_millis(5);
    let r = time_run("faa_storm", &mut sim, |sim| {
        sim.run_until(deadline);
    });

    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let prog = sw.program::<StateStoreProgram>();
    assert_eq!(
        prog.forwarded, count,
        "telemetry must not cost forwarded packets"
    );
    assert!(prog.is_quiescent(), "updates still pending at the deadline");
    let stats = prog.faa_stats();
    assert_eq!(stats.updates, count);
    assert!(
        stats.merged > 0,
        "storm must overrun the atomic rate and accumulate: {stats:?}"
    );
    let nic = sim.node::<RnicNode>(srv);
    assert_eq!(
        nic.stats().atomic_overflow_drops,
        0,
        "outstanding cap must protect the NIC"
    );
    let remote: u64 = read_remote_counters(nic, rkey, base_va, counters)
        .iter()
        .sum();
    assert_eq!(remote, count, "settled counters must be exact");
    r
}

/// Loss sweep: the packet-buffer detour over a lossy memory-server link at
/// 0.1% and 1% drop, reliable mode. Every drop costs a timeout + go-back-N
/// retransmission, so this prices the reliability layer's bookkeeping
/// (outstanding-op tracking, PSN serial arithmetic, dedup) on the hot path.
/// Each loss point must still recover *exactly* — no lost ring entries, no
/// failover — or the measurement is meaningless and the run asserts.
pub fn loss_sweep(count: u64) -> PerfResult {
    const ENTRY: u64 = 816;
    let (h0, m0) = pool_counts();
    // Run-only wall time, accumulated across the loss points: each
    // iteration builds a fresh topology, and construction must not count
    // against the event-loop measurement.
    let mut wall = 0f64;
    let (mut events, mut packets, mut sim_seconds) = (0u64, 0u64, 0f64);
    let mut digest = 0u64;
    let mut sched = SchedStats::default();
    for (i, &loss) in [0.001f64, 0.01].iter().enumerate() {
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
        let channel = RdmaChannel::setup(
            switch_endpoint(),
            PortId(2),
            &mut nic,
            ByteSize::from_bytes((count + 8) * ENTRY),
        );
        let mut fib = Fib::new(8);
        fib.install(host_mac(0), PortId(0));
        fib.install(host_mac(1), PortId(1));
        let prog = PacketBufferProgram::new(
            fib,
            vec![channel],
            PortId(1),
            ENTRY,
            Mode::Auto {
                start_store_qbytes: 4096,
                resume_load_qbytes: 2048,
            },
            8,
            TimeDelta::from_micros(50),
        )
        .with_reliability(ReliableConfig {
            rto: TimeDelta::from_micros(50),
            ..Default::default()
        });
        let mut b = SimBuilder::new(61 + i as u64);
        let switch = b.add_node(Box::new(SwitchNode::new(
            "tor",
            SwitchConfig::default(),
            Box::new(prog),
        )));
        let gen = b.add_node(Box::new(TrafficGenNode::new(
            "gen",
            WorkloadSpec::simple(
                host_mac(0),
                host_mac(1),
                FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
                800,
                Rate::from_gbps(30),
                count,
            ),
        )));
        let sink = b.add_node(Box::new(SinkNode::new("sink")));
        b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
        // A 10 G drain port keeps the detour engaged for the whole run.
        b.connect(
            switch,
            PortId(1),
            sink,
            PortId(0),
            LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
        );
        let server = b.add_node(Box::new(nic));
        let mut lossy = LinkSpec::testbed_40g();
        lossy.faults = FaultSpec::drop(loss);
        b.connect(switch, PortId(2), server, PortId(0), lossy);
        let mut sim = b.build();
        sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        let drain_time = TimeDelta::from_secs_f64(count as f64 * 800.0 * 8.0 / 10e9);
        let run_start = Instant::now();
        sim.run_until(Time::ZERO + drain_time + TimeDelta::from_millis(10));
        wall += run_start.elapsed().as_secs_f64();

        let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
        let s = sw.program::<PacketBufferProgram>().stats();
        assert!(s.stored > 0, "loss={loss}: the detour was never exercised");
        assert!(
            s.channel.retransmits > 0,
            "loss={loss}: loss never bit: {s:?}"
        );
        assert!(!s.channel.failed_over, "loss={loss}: failed over: {s:?}");
        assert_eq!(s.lost_entries, 0, "loss={loss}: lost ring entries: {s:?}");
        assert_eq!(s.loaded, s.stored, "loss={loss}: ring did not drain: {s:?}");
        assert_eq!(
            sim.node::<SinkNode>(sink).received,
            count,
            "loss={loss}: recovery must be exact"
        );
        events += sim.events_processed();
        packets += sim.packets_delivered();
        sim_seconds += sim.now().saturating_since(Time::ZERO).as_secs_f64();
        digest = digest.rotate_left(17) ^ sim.trace_digest();
        sched.merge(&sim.sched_stats());
    }
    let (h1, m1) = pool_counts();
    PerfResult {
        name: "loss_sweep",
        events,
        packets,
        sim_seconds,
        wall_seconds: wall,
        digest,
        sched,
        pool_hits: h1 - h0,
        pool_misses: m1 - m0,
        threads: current_sched_threads(),
    }
}

/// Server failover: a replicated state store (primary + mirror) driven
/// through a primary crash, failover, restart, and reseeded rejoin while
/// the FaA workload keeps flowing. This prices the replication layer's
/// bookkeeping — health detection, per-mirror delta accumulation,
/// anti-entropy replay, probe/reseed traffic — on the hot path. The run
/// asserts exact settled counters on *both* replicas, so the measurement
/// is only taken over a correct execution.
pub fn server_failover(count: u64) -> PerfResult {
    let counters = 512u64;
    let region = ByteSize::from_bytes(counters * 8);
    let (h0, m0) = pool_counts();
    let mut nic_a = RnicNode::new("memsrv-a", RnicConfig::at(host_endpoint(2)));
    let mut nic_b = RnicNode::new("memsrv-b", RnicConfig::at(host_endpoint(3)));
    let ch_a = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic_a, region);
    let ch_b = RdmaChannel::setup(switch_endpoint(), PortId(3), &mut nic_b, region);
    let rkey = ch_a.rkey;
    let base_va = ch_a.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::replicated(
        vec![ch_a, ch_b],
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(30),
            ..Default::default()
        },
        PoolConfig {
            down_threshold: 2,
            probe_interval: TimeDelta::from_micros(100),
            reseed_atomics: true,
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));
    let mut b = SimBuilder::new(71);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            count,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server_a = b.add_node(Box::new(nic_a));
    let server_b = b.add_node(Box::new(nic_b));
    b.connect(switch, PortId(2), server_a, PortId(0), link);
    b.connect(switch, PortId(3), server_b, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // ~1us of traffic per update: crash the primary a quarter in, bring it
    // back at the halfway mark so reseed + delta replay overlap live load.
    sim.schedule_crash(server_a, TimeDelta::from_micros(count / 4));
    sim.schedule_restart(server_a, TimeDelta::from_micros(count / 2));
    // Run-only wall time: setup above (channels, region zeroing, node
    // construction) is excluded from the measurement.
    let start = Instant::now();
    sim.run_until(Time::from_micros(count) + TimeDelta::from_millis(10));
    let wall = start.elapsed().as_secs_f64();

    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let prog = sw.program::<StateStoreProgram>();
    let stats = prog.faa_stats();
    assert!(prog.is_quiescent(), "stuck window: {stats:?}");
    assert!(!prog.is_degraded(), "pool must survive the crash: {stats:?}");
    assert!(stats.pool.failovers >= 1, "no failover: {stats:?}");
    assert!(stats.pool.rejoins >= 1, "no rejoin: {stats:?}");
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(truth, count);
    let dump_a = read_remote_counters(sim.node::<RnicNode>(server_a), rkey, base_va, counters);
    let dump_b = read_remote_counters(sim.node::<RnicNode>(server_b), rkey, base_va, counters);
    let total_b: u64 = dump_b.iter().sum();
    assert_eq!(total_b, truth, "survivor lost counts");
    assert_eq!(dump_a, dump_b, "rejoined replica diverges");
    let (h1, m1) = pool_counts();
    PerfResult {
        name: "server_failover",
        events: sim.events_processed(),
        packets: sim.packets_delivered(),
        sim_seconds: sim.now().saturating_since(Time::ZERO).as_secs_f64(),
        wall_seconds: wall,
        digest: sim.trace_digest(),
        sched: sim.sched_stats(),
        pool_hits: h1 - h0,
        pool_misses: m1 - m0,
        threads: current_sched_threads(),
    }
}

/// Pods in the [`fabric_fanout`] scenario.
pub const FANOUT_PODS: usize = 8;

/// Fabric fan-out: the parallel-backend workhorse. Eight pods — each a ToR
/// switch running the §4 state-store primitive against its own local
/// memory server, fed by a local-traffic generator and a cross-traffic
/// generator — joined in a ring of 300 ns switch-to-switch links. Cross
/// traffic from pod `p` is forwarded over the ring and delivered to pod
/// `p+1`'s sink, so every ring link carries live load in one direction
/// while FaA updates and ACKs keep each pod's local links busy.
///
/// The shape is deliberate: nodes are added pod by pod, so the engine's
/// contiguous partitioner puts whole pods on workers (at 4 threads, two
/// pods each; at 8, one each) and only the 300 ns ring links cross
/// partitions — exactly the positive-lookahead regime the conservative
/// sync needs. `threads` selects [`SchedBackend::Parallel`]; the trace
/// digest is bit-identical for every thread count (the equivalence suite
/// and the `fabric_fanout_digest_invariant_across_threads` test hold this
/// line).
///
/// Correctness gates on every run: per-pod settled counters must equal the
/// pod's oracle exactly (reliable FaA), every sink must see both its local
/// and its ring flow in full, and no pod may degrade.
pub fn fabric_fanout(count: u64, threads: usize) -> PerfResult {
    const PODS: usize = FANOUT_PODS;
    let name: &'static str = match threads {
        1 => "fabric_fanout_t1",
        2 => "fabric_fanout_t2",
        4 => "fabric_fanout_t4",
        8 => "fabric_fanout_t8",
        _ => "fabric_fanout",
    };
    with_sched_backend(SchedBackend::Parallel(threads), || {
        let counters = 256u64;
        let region = ByteSize::from_bytes(counters * 8);
        // Host index plan, 4 per pod: gen_local, sink, memsrv, gen_cross.
        let gen_local_host = |p: usize| p * 4;
        let sink_host = |p: usize| p * 4 + 1;
        let memsrv_host = |p: usize| p * 4 + 2;
        let gen_cross_host = |p: usize| p * 4 + 3;
        // Pod p's switch speaks RoCE to its local server under its own
        // identity (the shared `switch_endpoint` would alias across pods).
        let pod_switch_ep = |p: usize| extmem_wire::roce::RoceEndpoint {
            mac: extmem_wire::MacAddr::local(200 + p as u32),
            ip: 0x0a00_0100 + p as u32,
        };

        let mut b = SimBuilder::new(97);
        let link = LinkSpec::testbed_40g();
        let mut switches = Vec::new();
        let mut gens = Vec::new();
        let mut sinks = Vec::new();
        let mut servers = Vec::new();
        let mut keys = Vec::new();
        for p in 0..PODS {
            let next = (p + 1) % PODS;
            let mut nic = RnicNode::new(
                format!("memsrv{p}"),
                RnicConfig::at(host_endpoint(memsrv_host(p))),
            );
            let channel = RdmaChannel::setup(pod_switch_ep(p), PortId(2), &mut nic, region);
            keys.push((channel.rkey, channel.base_va));
            let mut fib = Fib::new(8);
            fib.install(host_mac(sink_host(p)), PortId(1));
            fib.install(host_mac(sink_host(next)), PortId(4));
            let engine = FaaEngine::new(
                channel,
                FaaConfig {
                    reliable: true,
                    rto: TimeDelta::from_micros(50),
                    ..Default::default()
                },
            );
            let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(20));
            let switch = b.add_node(Box::new(SwitchNode::new(
                format!("tor{p}"),
                SwitchConfig::default(),
                Box::new(prog),
            )));
            let local_flow = FiveTuple::new(
                host_ip(gen_local_host(p)),
                host_ip(sink_host(p)),
                40_000 + p as u16,
                9_000,
                17,
            );
            let cross_flow = FiveTuple::new(
                host_ip(gen_cross_host(p)),
                host_ip(sink_host(next)),
                41_000 + p as u16,
                9_000,
                17,
            );
            let gen_local = b.add_node(Box::new(TrafficGenNode::new(
                format!("local{p}"),
                WorkloadSpec::simple(
                    host_mac(gen_local_host(p)),
                    host_mac(sink_host(p)),
                    local_flow,
                    256,
                    Rate::from_gbps(5),
                    count,
                ),
            )));
            let gen_cross = b.add_node(Box::new(TrafficGenNode::new(
                format!("cross{p}"),
                WorkloadSpec::simple(
                    host_mac(gen_cross_host(p)),
                    host_mac(sink_host(next)),
                    cross_flow,
                    256,
                    Rate::from_gbps(5),
                    count,
                ),
            )));
            let sink = b.add_node(Box::new(SinkNode::new(format!("sink{p}"))));
            let server = b.add_node(Box::new(nic));
            b.connect(switch, PortId(0), gen_local, PortId(0), link);
            b.connect(switch, PortId(1), sink, PortId(0), link);
            b.connect(switch, PortId(2), server, PortId(0), link);
            b.connect(switch, PortId(3), gen_cross, PortId(0), link);
            switches.push(switch);
            gens.push(gen_local);
            gens.push(gen_cross);
            sinks.push(sink);
            servers.push(server);
        }
        // The ring: pod p's port 4 feeds pod p+1's port 5. 300 ns of
        // propagation per hop is the parallel engine's lookahead.
        for p in 0..PODS {
            b.connect(switches[p], PortId(4), switches[(p + 1) % PODS], PortId(5), link);
        }

        let mut sim = b.build();
        for &g in &gens {
            sim.schedule_timer(g, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        }
        // 5 Gbps × 256 B paced sends, then a settle window for the
        // reliability layer; the flush tick re-arms forever, so drive to a
        // fixed deadline like `faa_storm`.
        let send_time = TimeDelta::from_secs_f64(count as f64 * 256.0 * 8.0 / 5e9);
        let deadline = Time::ZERO + send_time + TimeDelta::from_millis(5);
        let mut r = time_run(name, &mut sim, |sim| {
            sim.run_until(deadline);
        });
        r.name = name;
        for p in 0..PODS {
            let sw: &SwitchNode = sim.node::<SwitchNode>(switches[p]);
            let prog = sw.program::<StateStoreProgram>();
            let stats = prog.faa_stats();
            assert!(prog.is_quiescent(), "pod {p}: stuck window: {stats:?}");
            assert!(!prog.is_degraded(), "pod {p}: pool degraded: {stats:?}");
            // Local + locally injected cross + ring arrivals from p-1.
            assert_eq!(prog.forwarded, 3 * count, "pod {p}: forwarding lost frames");
            assert_eq!(
                sim.node::<SinkNode>(sinks[p]).received,
                2 * count,
                "pod {p}: sink must see its local and its ring flow"
            );
            let (rkey, base_va) = keys[p];
            let dump = read_remote_counters(sim.node::<RnicNode>(servers[p]), rkey, base_va, counters);
            let mut expected = vec![0u64; counters as usize];
            for (&slot, &v) in &prog.oracle {
                expected[slot as usize] += v;
            }
            assert_eq!(dump, expected, "pod {p}: settled counters must be exact");
        }
        let par = sim.par_stats();
        assert_eq!(
            par.partitions,
            threads.clamp(1, PODS * 5),
            "builder must honor the requested thread count"
        );
        if par.partitions > 1 {
            assert!(
                par.cross_messages > 0,
                "ring traffic must cross partitions: {par:?}"
            );
            assert!(
                par.min_dispatch_margin_picos >= 1,
                "lookahead safety margin collapsed: {par:?}"
            );
        }
        r
    })
}

/// Leaf switches in the [`fabric_shard`] scenario.
pub const SHARD_LEAVES: usize = 4;
/// Spine switches in the [`fabric_shard`] scenario.
pub const SHARD_SPINES: usize = 2;
/// Replicated servers per shard.
pub const SHARD_REPLICAS: usize = 2;
/// Counter slots per shard region.
pub const SHARD_COUNTERS: u64 = 256;
/// Synthesized flow population per generator (above the exact-CDF
/// threshold, so the constant-space Zipf sampler is on the pinned path).
pub const SHARD_FLOWS: usize = 1 << 20;
/// Shard id of each leaf's spare (activated mid-run).
const SPARE_SHARD: u32 = 2;

/// Hosts per leaf in [`fabric_shard`]: gen, sink, and 3 shards × 2
/// replica servers (shard 2 is the spare).
pub const SHARD_HOSTS_PER_LEAF: usize = 2 + 3 * SHARD_REPLICAS;

/// Global host index of host `i` on leaf `l` (MAC/IP assignment).
fn shard_host(l: usize, i: usize) -> usize {
    l * SHARD_HOSTS_PER_LEAF + i
}

/// Sharded leaf–spine fabric: the E6 capacity-expansion claim at fleet
/// shape. Four leaf switches (pods) each run the consistent-hash
/// [`ShardedStateStoreProgram`] over two active shards plus one spare,
/// every shard a 2-way [`extmem_core::pool::ReplicatedPool`]; two spines
/// join the pods. Each pod's generator sends Zipf-skewed traffic drawn
/// from a 2^20-flow synthesized population (the constant-space sampler —
/// no materialized flow vector anywhere) across the spine to the next
/// pod's sink, so every leaf counts its own egress and its neighbor's
/// ingress while FaA updates fan out to its local shard replicas. Host
/// links are asymmetric (40 G down / 25 G up) to keep the per-direction
/// fabric path priced.
///
/// Halfway through the send window every leaf activates its spare shard
/// live — the consistent-hash ring moves ≈1/3 of the key space onto it
/// (asserted within a band) without stopping traffic, and the per-shard
/// oracle stays exact because updates are attributed to the shard that
/// actually received them.
///
/// Correctness gates on every run: every pod quiescent and undegraded,
/// exact sink counts, per-(shard, slot) settled counters equal to the
/// oracle on *both* replicas of all twelve shards, and the rebalance
/// fraction in band. The digest is bit-identical across Wheel, Heap and
/// Parallel(1/2/4) — `sched_equivalence` holds the line, mid-run
/// mutation included.
pub fn fabric_shard(count: u64, threads: usize) -> PerfResult {
    let name: &'static str = match threads {
        1 => "fabric_shard_t1",
        2 => "fabric_shard_t2",
        4 => "fabric_shard_t4",
        _ => "fabric_shard",
    };
    with_sched_backend(SchedBackend::Parallel(threads), || {
        const L: usize = SHARD_LEAVES;
        let region = ByteSize::from_bytes(SHARD_COUNTERS * 8);
        let leaf_switch_ep = |l: usize| extmem_wire::roce::RoceEndpoint {
            mac: extmem_wire::MacAddr::local(200 + l as u32),
            ip: 0x0a00_0100 + l as u32,
        };
        let spec = FabricSpec {
            leaves: L,
            spines: SHARD_SPINES,
            hosts_per_leaf: SHARD_HOSTS_PER_LEAF,
            host_link: LinkSpec::asymmetric(
                Rate::from_gbps(40),
                Rate::from_gbps(25),
                TimeDelta::from_nanos(300),
            ),
            up_link: LinkSpec::testbed_40g(),
        };

        // Pre-build every leaf's NICs, channels and program: the fabric
        // factories below just take() them in pod order.
        let mut progs: Vec<Option<ShardedStateStoreProgram>> = Vec::new();
        let mut nics: Vec<Vec<Option<RnicNode>>> = Vec::new();
        let mut keys = Vec::new(); // [leaf][shard][replica] -> (rkey, base_va)
        for l in 0..L {
            let mut pod_nics: Vec<Option<RnicNode>> = vec![None, None];
            let mut shards = Vec::new();
            let mut pod_keys = Vec::new();
            for shard in 0..3u32 {
                let mut channels = Vec::new();
                let mut shard_keys = Vec::new();
                for r in 0..SHARD_REPLICAS {
                    let host_i = 2 + shard as usize * SHARD_REPLICAS + r;
                    let mut nic = RnicNode::new(
                        format!("mem{l}s{shard}r{r}"),
                        RnicConfig::at(host_endpoint(shard_host(l, host_i))),
                    );
                    let ch = RdmaChannel::setup(
                        leaf_switch_ep(l),
                        spec.host_port(host_i),
                        &mut nic,
                        region,
                    );
                    shard_keys.push((ch.rkey, ch.base_va));
                    channels.push(ch);
                    pod_nics.push(Some(nic));
                }
                pod_keys.push(shard_keys);
                let engine = FaaEngine::replicated(
                    channels,
                    FaaConfig {
                        reliable: true,
                        rto: TimeDelta::from_micros(50),
                        ..Default::default()
                    },
                    PoolConfig::default(),
                );
                shards.push((shard, engine, shard != SPARE_SHARD));
            }
            keys.push(pod_keys);
            let next = (l + 1) % L;
            let mut fib = Fib::new(8);
            fib.install(host_mac(shard_host(l, 1)), spec.host_port(1));
            fib.install(
                host_mac(shard_host(next, 1)),
                spec.uplink_port(next % SHARD_SPINES),
            );
            progs.push(Some(ShardedStateStoreProgram::new(
                fib,
                shards,
                64,
                TimeDelta::from_micros(20),
            )));
            nics.push(pod_nics);
        }

        let mut b = SimBuilder::new(113);
        let fabric = spec.build(
            &mut b,
            |l| {
                Box::new(SwitchNode::new(
                    format!("leaf{l}"),
                    SwitchConfig::default(),
                    Box::new(progs[l].take().expect("leaf program built once")),
                ))
            },
            |s| {
                let mut fib = Fib::new(8);
                for j in 0..L {
                    fib.install(host_mac(shard_host(j, 1)), FabricSpec::spine_port(&spec, j));
                }
                let mut prog = L2Program::new(8);
                prog.fib = fib;
                Box::new(SwitchNode::new(
                    format!("spine{s}"),
                    SwitchConfig::default(),
                    Box::new(prog),
                ))
            },
            |l, i| match i {
                0 => {
                    let next = (l + 1) % L;
                    Box::new(TrafficGenNode::new(
                        format!("gen{l}"),
                        WorkloadSpec {
                            src_mac: host_mac(shard_host(l, 0)),
                            dst_mac: host_mac(shard_host(next, 1)),
                            flows: FlowSet::synth(
                                SHARD_FLOWS,
                                0x0a80_0000 + ((l as u32) << 8),
                                host_ip(shard_host(next, 1)),
                                9_000,
                            ),
                            pick: FlowPick::Zipf(1.05),
                            frame_len: 256,
                            offered: Some(Rate::from_gbps(5)),
                            arrival: Arrival::Paced,
                            count,
                            seed: 23 + l as u64,
                            flow_id_base: (l as u32) << 24,
                        },
                    )) as Box<dyn extmem_sim::Node>
                }
                1 => Box::new(SinkNode::coarse(format!("sink{l}"))),
                _ => Box::new(nics[l][i].take().expect("server NIC built once")),
            },
        );

        let mut sim = b.build();
        for l in 0..L {
            sim.schedule_timer(fabric.hosts[l][0], TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        }

        // 5 Gbps × 256 B paced sends; spares activate at the halfway mark,
        // then the run settles well past the last send.
        let send_time = TimeDelta::from_secs_f64(count as f64 * 256.0 * 8.0 / 5e9);
        let half = Time::ZERO + TimeDelta::from_picos(send_time.picos() / 2);
        let deadline = Time::ZERO + send_time + TimeDelta::from_millis(5);
        let leaves = fabric.leaves.clone();
        let mut r = time_run(name, &mut sim, |sim| {
            sim.run_until(half);
            for (l, &leaf) in leaves.iter().enumerate() {
                let sw = sim.node_mut::<SwitchNode>(leaf);
                let moved = sw
                    .program_mut::<ShardedStateStoreProgram>()
                    .activate_shard(SPARE_SHARD, 1 << 16);
                // Ideal movement onto the third shard is 1/3 of the key
                // space; vnode placement noise allows a band.
                assert!(
                    (0.15..=0.55).contains(&moved),
                    "leaf {l}: rebalance moved {moved}, far from 1/3"
                );
            }
            sim.run_until(deadline);
        });
        r.name = name;

        for (l, leaf_keys) in keys.iter().enumerate() {
            let sw: &SwitchNode = sim.node::<SwitchNode>(fabric.leaves[l]);
            let prog = sw.program::<ShardedStateStoreProgram>();
            assert!(prog.is_quiescent(), "leaf {l}: stuck window");
            assert!(!prog.is_degraded(), "leaf {l}: pool degraded");
            // Own egress plus the previous pod's ingress.
            assert_eq!(prog.forwarded, 2 * count, "leaf {l}: forwarding lost frames");
            assert_eq!(prog.capacity_slots(), 3 * SHARD_COUNTERS);
            let sink = sim.node::<SinkNode>(fabric.hosts[l][1]);
            assert_eq!(sink.received, count, "leaf {l}: sink short");
            assert!(sink.flows.is_empty(), "coarse sink tracked flows");
            // Every shard's settled counters — exact against the routing
            // oracle, on both replicas, spare included.
            for shard in 0..3u32 {
                let mut expected = vec![0u64; SHARD_COUNTERS as usize];
                for (&(s, slot), &v) in &prog.oracle {
                    if s == shard {
                        expected[slot as usize] += v;
                    }
                }
                let dumps: Vec<Vec<u64>> = (0..SHARD_REPLICAS)
                    .map(|rep| {
                        let host_i = 2 + shard as usize * SHARD_REPLICAS + rep;
                        let (rkey, base_va) = leaf_keys[shard as usize][rep];
                        read_remote_counters(
                            sim.node::<RnicNode>(fabric.hosts[l][host_i]),
                            rkey,
                            base_va,
                            SHARD_COUNTERS,
                        )
                    })
                    .collect();
                assert_eq!(
                    dumps[0], expected,
                    "leaf {l} shard {shard}: counters must be exact"
                );
                assert_eq!(dumps[0], dumps[1], "leaf {l} shard {shard}: replicas diverge");
            }
            // The spare only saw post-activation traffic.
            let stats = prog.shard_stats();
            assert!(stats.iter().all(|s| s.active), "all shards active at end");
            let spare_routed = stats
                .iter()
                .find(|s| s.id == SPARE_SHARD)
                .expect("spare exists")
                .routed;
            assert!(spare_routed > 0, "leaf {l}: spare shard never used");
            assert!(
                spare_routed < count,
                "leaf {l}: spare routed {spare_routed} of 2x{count}"
            );
        }
        let par = sim.par_stats();
        assert_eq!(
            par.partitions,
            threads.clamp(1, L * (1 + SHARD_HOSTS_PER_LEAF) + SHARD_SPINES),
            "builder must honor the requested thread count"
        );
        if par.partitions > 1 {
            assert!(
                par.cross_messages > 0,
                "spine traffic must cross partitions: {par:?}"
            );
        }
        r
    })
}

/// Repetitions per scenario in [`run_all`]; the fastest is reported, which
/// filters out scheduler noise from a shared machine.
pub const REPS: u32 = 3;

fn best_of(reps: u32, run: impl Fn() -> PerfResult) -> PerfResult {
    (0..reps)
        .map(|_| run())
        .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        .expect("at least one rep")
}

/// Run all scenarios at the standard scale, best-of-[`REPS`] each. The
/// fan-out scenario runs at 1, 2 and 4 worker threads so the baseline
/// carries the parallel backend's scaling curve next to the host's core
/// count (schema 3's `host.logical_cores`).
pub fn run_all() -> Vec<PerfResult> {
    vec![
        best_of(REPS, || e1_write_read_loop(8_000)),
        best_of(REPS, incast_scenario),
        best_of(REPS, || lookup_miss_storm(8_000)),
        best_of(REPS, || remote_ops(8_000)),
        best_of(REPS, || insert_churn(8_000)),
        best_of(REPS, || faa_storm(40_000)),
        best_of(REPS, || loss_sweep(6_000)),
        best_of(REPS, || server_failover(8_000)),
        best_of(REPS, || fabric_fanout(2_000, 1)),
        best_of(REPS, || fabric_fanout(2_000, 2)),
        best_of(REPS, || fabric_fanout(2_000, 4)),
        best_of(REPS, || fabric_shard(2_000, 1)),
        best_of(REPS, || fabric_shard(2_000, 2)),
        best_of(REPS, || fabric_shard(2_000, 4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_and_report() {
        // Smoke at reduced scale: sane counters and well-formed JSON.
        let results = vec![
            e1_write_read_loop(500),
            lookup_miss_storm(300),
            lookup_miss_storm_direct(300),
            remote_ops(300),
            insert_churn(600),
            faa_storm(2_000),
            loss_sweep(600),
            server_failover(1_200),
            fabric_fanout(200, 1),
        ];
        for r in &results {
            assert!(r.events > 0 && r.packets > 0, "{r:?}");
            assert!(r.sim_seconds > 0.0 && r.wall_seconds > 0.0, "{r:?}");
        }
        for r in &results {
            assert_ne!(r.digest, 0, "digest must fingerprint the run: {r:?}");
        }
        let doc = to_json_doc(&results, true);
        assert!(doc.contains("\"e1_write_read_loop\""));
        assert!(doc.contains("\"fabric_fanout_t1\""));
        assert!(doc.contains("\"events_per_sec\""));
        assert!(doc.contains("\"schema\": 3"));
        assert!(doc.contains("\"host\""));
        assert!(doc.contains("\"logical_cores\""));
        assert!(doc.contains("\"threads\": 1"));
        assert!(doc.contains("\"digest\""));
        assert!(doc.contains("\"pool_hit_rate\""));
        assert!(
            !to_json_doc(&results, false).contains("\"sched\""),
            "sched block must be opt-in"
        );
    }

    #[test]
    fn fabric_fanout_digest_invariant_across_threads() {
        // The tentpole determinism claim, on the scenario built to stress
        // it: same events, same per-hop deliveries, bit-identical trace
        // digest at 1, 2, 4 and 8 workers.
        let base = fabric_fanout(150, 1);
        for threads in [2, 4, 8] {
            let r = fabric_fanout(150, threads);
            assert_eq!(r.digest, base.digest, "t{threads} digest diverged");
            assert_eq!(r.events, base.events, "t{threads} event count diverged");
            assert_eq!(r.packets, base.packets, "t{threads} packet count diverged");
        }
    }

    #[test]
    fn fabric_shard_digest_invariant_across_threads() {
        // Same line for the sharded fabric — and this one mutates programs
        // mid-run (spare-shard activation), so it additionally pins that
        // pause/mutate/resume is backend-invariant.
        let base = fabric_shard(300, 1);
        for threads in [2, 4] {
            let r = fabric_shard(300, threads);
            assert_eq!(r.digest, base.digest, "t{threads} digest diverged");
            assert_eq!(r.events, base.events, "t{threads} event count diverged");
            assert_eq!(r.packets, base.packets, "t{threads} packet count diverged");
        }
    }
}
