//! Experiment E1: the §5 packet-buffer microbenchmark.
//!
//! Reproduces the three numbers of "Packet buffer primitive":
//!
//! * max **store** rate without loss — 1500 B frames arrive, the switch
//!   encapsulates every one into an RDMA WRITE to the remote ring (manual
//!   mode); beyond the ceiling "RDMA requests were occasionally dropped at
//!   the NIC" (the NIC RX queue overflows),
//! * max **forward** (load) rate — the ring is pre-loaded, then drained
//!   through the response-triggered READ chain to the destination port,
//! * the **native** server-to-server RDMA WRITE / READ baseline, which the
//!   paper found "only 4.4% faster".

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::packet_buffer::{Mode, PacketBufferProgram, TOKEN_START_LOADING};
use extmem_core::{Fib, RdmaChannel, ReliableConfig};
use extmem_rnic::requester::{setup_channel, ReadLooper, WriteBlaster};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::switch::program_token;
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, QpNum, Rate, Time, TimeDelta};

/// Ring entry size for E1: header (6) plus a full 1500 B frame, rounded to
/// the 4 B RoCE pad boundary — the paper's "allocate the buffer to store
/// full-sized Ethernet frame in each entry".
pub const E1_ENTRY: u64 = 1516;

/// Frames per measurement run. Large enough that a small service deficit
/// accumulates past the NIC RX queue and shows up as loss.
pub const E1_COUNT: u64 = 40_000;

/// Outcome of one offered-rate probe.
#[derive(Clone, Copy, Debug)]
pub struct StoreProbe {
    /// Offered payload rate.
    pub offered: Rate,
    /// Frames stored (accepted by the NIC).
    pub accepted: u64,
    /// Frames lost anywhere (switch TM or NIC).
    pub lost: u64,
}

/// Drive the store path at `offered` payload rate and report losses.
///
/// The paper's prototype had no switch-side retransmission, and the number
/// being reproduced is the raw NIC ceiling ("RDMA requests were
/// occasionally dropped at the NIC"), so this probe runs the channel in
/// best-effort mode — reliable mode would retransmit the over-ceiling
/// drops and report every rate as lossless.
pub fn probe_store(offered: Rate, count: u64) -> StoreProbe {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let region = ByteSize::from_bytes((count + 8) * E1_ENTRY);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        E1_ENTRY,
        Mode::Manual,
        8,
        TimeDelta::from_millis(10),
    )
    .with_reliability(ReliableConfig {
        reliable: false,
        ..Default::default()
    });

    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17);
    let mut b = SimBuilder::new(21);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 1500, offered, count),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let nic = sim.node::<RnicNode>(srv);
    let accepted = nic.stats().writes;
    StoreProbe {
        offered,
        accepted,
        lost: count - accepted,
    }
}

/// Pre-load `count` frames into the ring at a safe rate, then drain and
/// measure the forwarding goodput at the destination.
pub fn measure_forward_rate(count: u64) -> Rate {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let region = ByteSize::from_bytes((count + 8) * E1_ENTRY);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        E1_ENTRY,
        Mode::Manual,
        8,
        TimeDelta::from_millis(10),
    );

    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17);
    let mut b = SimBuilder::new(22);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            flow,
            1500,
            Rate::from_gbps(25),
            count,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // Store phase: run until every frame is in the ring.
    let store_time = TimeDelta::from_secs_f64(count as f64 * 1500.0 * 8.0 / 25e9 + 1e-3);
    sim.run_until(Time::ZERO + store_time);
    // Drain phase.
    sim.schedule_timer(switch, TimeDelta::ZERO, program_token(TOKEN_START_LOADING));
    sim.run_to_quiescence();

    let sink = sim.node::<SinkNode>(sink);
    assert_eq!(sink.received, count, "forward path lost frames");
    let elapsed = sink
        .last_rx
        .saturating_since(sink.first_rx.expect("frames delivered"));
    extmem_apps::metrics::throughput((count - 1) * 1500, elapsed)
}

/// Native server-to-server WRITE probe (no switch data-plane logic): a host
/// blasts `count` 1500 B WRITEs at `offered` payload rate straight into the
/// RNIC.
pub fn probe_native_write(offered: Rate, count: u64) -> StoreProbe {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(1)));
    let (qp, rkey, base) = setup_channel(
        host_endpoint(0),
        QpNum(0x900),
        &mut nic,
        ByteSize::from_mb(8),
    );
    // Pace by *payload* rate to stay comparable with probe_store.
    let wire_rate = offered.scaled(1576.0 / 1500.0);
    let blaster = WriteBlaster::new("blaster", qp, rkey, base, 8_000_000, 1500, wire_rate, count);
    let mut b = SimBuilder::new(23);
    let bl = b.add_node(Box::new(blaster));
    let srv = b.add_node(Box::new(nic));
    b.connect(bl, PortId(0), srv, PortId(0), LinkSpec::testbed_40g());
    let mut sim = b.build();
    sim.schedule_timer(bl, TimeDelta::ZERO, 1);
    sim.run_to_quiescence();
    let accepted = sim.node::<RnicNode>(srv).stats().writes;
    StoreProbe {
        offered,
        accepted,
        lost: count - accepted,
    }
}

/// Native server-to-server READ goodput: closed loop, window 8.
pub fn measure_native_read(count: u64) -> Rate {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(1)));
    let (qp, rkey, base) = setup_channel(
        host_endpoint(0),
        QpNum(0x901),
        &mut nic,
        ByteSize::from_mb(8),
    );
    let looper = ReadLooper::new("looper", qp, rkey, base, 8_000_000, 1500, 8, count);
    let mut b = SimBuilder::new(24);
    let lo = b.add_node(Box::new(looper));
    let srv = b.add_node(Box::new(nic));
    b.connect(lo, PortId(0), srv, PortId(0), LinkSpec::testbed_40g());
    let mut sim = b.build();
    sim.schedule_timer(lo, TimeDelta::ZERO, 0);
    sim.run_to_quiescence();
    let lo = sim.node::<ReadLooper>(lo);
    assert_eq!(lo.completed, count);
    extmem_apps::metrics::throughput(lo.bytes, lo.last_completion.saturating_since(Time::ZERO))
}

/// Sweep offered rates and return the highest lossless one.
pub fn max_lossless(mut probe: impl FnMut(Rate) -> StoreProbe, rates_gbps: &[f64]) -> Rate {
    let mut best = Rate::ZERO;
    for &g in rates_gbps {
        let r = probe(Rate::from_gbps_f64(g));
        if r.lost == 0 && r.offered > best {
            best = r.offered;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_lossless_below_ceiling_and_lossy_above() {
        let low = probe_store(Rate::from_gbps(30), 5_000);
        assert_eq!(low.lost, 0, "{low:?}");
        let high = probe_store(Rate::from_gbps(40), 40_000);
        assert!(
            high.lost > 0,
            "line rate must exceed the NIC ceiling: {high:?}"
        );
    }

    #[test]
    fn forward_rate_in_paper_regime() {
        let r = measure_forward_rate(5_000);
        let g = r.gbps_f64();
        assert!(
            (34.0..40.0).contains(&g),
            "forward rate {g} Gbps out of regime"
        );
    }

    #[test]
    fn native_write_slightly_faster_than_store_path() {
        let native = probe_native_write(Rate::from_gbps(34), 5_000);
        assert_eq!(native.lost, 0, "{native:?}");
    }

    #[test]
    fn native_read_in_regime() {
        let g = measure_native_read(3_000).gbps_f64();
        assert!(
            (34.0..40.5).contains(&g),
            "native read {g} Gbps out of regime"
        );
    }
}
