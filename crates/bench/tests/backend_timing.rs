//! Wall-clock comparison of the two scheduler backends at full-scenario
//! scale. Ignored by default: timing is machine-dependent, so this is a
//! tool for perf work (`-- --ignored --nocapture`), not a CI gate.
use extmem_bench::simperf::{e1_write_read_loop, faa_storm, lookup_miss_storm};
use extmem_sim::{with_sched_backend, SchedBackend};
use std::time::Instant;

#[test]
#[ignore]
fn backend_timing() {
    for (name, run) in [
        (
            "e1",
            Box::new(|| {
                e1_write_read_loop(8_000);
            }) as Box<dyn Fn()>,
        ),
        (
            "lookup",
            Box::new(|| {
                lookup_miss_storm(8_000);
            }),
        ),
        (
            "faa",
            Box::new(|| {
                faa_storm(40_000);
            }),
        ),
    ] {
        for backend in [SchedBackend::Wheel, SchedBackend::Heap] {
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                with_sched_backend(backend, &run);
                best = best.min(t.elapsed().as_secs_f64());
            }
            println!("{name:8} {backend:?}: {:.1} ms", best * 1e3);
        }
    }
}
