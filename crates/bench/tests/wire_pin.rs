//! Wire-format pin for the direct-hash lookup ablation.
//!
//! The one-RTT cuckoo rework left the old direct-hash lookup mode in place
//! as the ablation baseline, and its wire behavior must not drift while the
//! cuckoo path evolves: same slot arithmetic, same READ geometry, same
//! packet trace. The trace digest is backend- and platform-independent
//! (the sched_equivalence suite proves the former), so a single pinned
//! constant holds the whole run — any change to the direct-hash wire
//! format, op sizing, or event ordering shows up as a digest mismatch here
//! before it can silently redefine the ablation.

use extmem_bench::simperf::lookup_miss_storm_direct;

/// Digest of `lookup_miss_storm_direct(500)` at the current wire format.
/// If an intentional protocol change moves it, re-run and update — but an
/// unintentional move means the ablation baseline no longer measures what
/// the paper comparison says it measures.
///
/// Re-pinned when the engine moved to per-direction trace folds and
/// per-node/per-direction RNG streams for the parallel backend: the trace
/// content is unchanged in structure but the digest composition and fault
/// draw order differ, so the old constant no longer applies.
const DIRECT_HASH_DIGEST: u64 = 0x89c5dcecdc49a30d;

#[test]
fn direct_hash_ablation_wire_format_is_pinned() {
    let r = lookup_miss_storm_direct(500);
    assert_eq!(
        r.digest, DIRECT_HASH_DIGEST,
        "direct-hash ablation trace drifted: got {:016x}, pinned {:016x}",
        r.digest, DIRECT_HASH_DIGEST
    );
}

use extmem_bench::simperf::{lookup_miss_storm, remote_ops};

/// Digest of `lookup_miss_storm(500)` — the verb-mode cuckoo baseline that
/// the remote-op ISA A/Bs against. With the `RemoteOps` knob off, the miss
/// path must keep issuing the filter-directed one-READ-per-miss verb
/// exchange bit-for-bit: the ablation is only meaningful if the baseline
/// it measures stands still.
const VERB_CUCKOO_DIGEST: u64 = 0xbd9fbaa99bc0703c;

/// Digest of `remote_ops(500)` — the remote-op format itself: opcodes,
/// extension headers, op-engine service times and completion ordering.
const REMOTE_OPS_DIGEST: u64 = 0x94a5810ce4af495e;

#[test]
fn verb_cuckoo_ablation_wire_format_is_pinned() {
    let r = lookup_miss_storm(500);
    assert_eq!(
        r.digest, VERB_CUCKOO_DIGEST,
        "verb-mode cuckoo ablation trace drifted: got {:016x}, pinned {:016x}",
        r.digest, VERB_CUCKOO_DIGEST
    );
}

#[test]
fn remote_ops_wire_format_is_pinned() {
    let r = remote_ops(500);
    assert_eq!(
        r.digest, REMOTE_OPS_DIGEST,
        "remote-op trace drifted: got {:016x}, pinned {:016x}",
        r.digest, REMOTE_OPS_DIGEST
    );
}
