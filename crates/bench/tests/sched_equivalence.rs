//! Scheduler-backend equivalence at full-scenario scale: every simperf
//! scenario must produce a bit-identical trace digest whether the event
//! queue runs on the hierarchical timing wheel or the binary-heap oracle.
//!
//! The structure proptests check the two backends agree op-by-op on random
//! scripts; this test checks the property that actually justifies the swap —
//! the *simulations* are indistinguishable: same packet trace, same event
//! count, end to end, for all perf scenarios plus the direct-hash lookup
//! ablation (at reduced scale so the suite stays fast).

use extmem_bench::simperf::{
    e1_write_read_loop, faa_storm, incast_scenario, insert_churn, lookup_miss_storm,
    lookup_miss_storm_direct, loss_sweep, server_failover, PerfResult,
};
use extmem_sim::{with_sched_backend, SchedBackend};

fn assert_backend_equivalent(name: &str, run: impl Fn() -> PerfResult) {
    let wheel = with_sched_backend(SchedBackend::Wheel, &run);
    let heap = with_sched_backend(SchedBackend::Heap, &run);
    assert_eq!(
        wheel.digest, heap.digest,
        "{name}: trace digests diverged between wheel and heap backends"
    );
    assert_ne!(wheel.digest, 0, "{name}: digest must fingerprint the run");
    assert_eq!(
        wheel.events, heap.events,
        "{name}: event counts diverged between backends"
    );
    assert_eq!(
        wheel.packets, heap.packets,
        "{name}: delivered packets diverged between backends"
    );
}

#[test]
fn e1_write_read_loop_is_backend_invariant() {
    assert_backend_equivalent("e1_write_read_loop", || e1_write_read_loop(400));
}

#[test]
fn incast_is_backend_invariant() {
    assert_backend_equivalent("incast", incast_scenario);
}

#[test]
fn lookup_miss_storm_is_backend_invariant() {
    assert_backend_equivalent("lookup_miss_storm", || lookup_miss_storm(250));
}

#[test]
fn lookup_miss_storm_direct_is_backend_invariant() {
    assert_backend_equivalent("lookup_miss_storm_direct", || lookup_miss_storm_direct(250));
}

#[test]
fn insert_churn_is_backend_invariant() {
    // Relocation steps, verify READs, and the churn script all ride on
    // timers interleaved with traffic, so displacement ordering would be
    // the first casualty of a backend-dependent tie-break.
    assert_backend_equivalent("insert_churn", || insert_churn(600));
}

#[test]
fn faa_storm_is_backend_invariant() {
    assert_backend_equivalent("faa_storm", || faa_storm(1_500));
}

#[test]
fn loss_sweep_is_backend_invariant() {
    // 0.1% loss needs a few thousand frames before the deterministic RNG
    // actually drops one; below that the scenario's own invariants fail.
    assert_backend_equivalent("loss_sweep", || loss_sweep(2_000));
}

#[test]
fn server_failover_is_backend_invariant() {
    // Crash detection, probing, and rejoin all ride on timers, so this is
    // the scenario most likely to expose backend-dependent timer ordering.
    assert_backend_equivalent("server_failover", || server_failover(1_200));
}
