//! Scheduler-backend equivalence at full-scenario scale: every simperf
//! scenario must produce a bit-identical trace digest whether the event
//! queue runs on the hierarchical timing wheel, the binary-heap oracle, or
//! the conservative-synchronization parallel engine.
//!
//! The structure proptests check the backends agree op-by-op on random
//! scripts; this test checks the property that actually justifies the swap —
//! the *simulations* are indistinguishable: same packet trace, same event
//! count, end to end, for all perf scenarios plus the direct-hash lookup
//! ablation (at reduced scale so the suite stays fast).
//!
//! The parallel leg's worker count comes from `EXTMEM_SCHED_THREADS`
//! (default 2); `scripts/ci.sh` replays the suite at 1, 2 and 4 workers and
//! asserts the digests printed for each run agree across thread counts too.

use extmem_bench::simperf::{
    e1_write_read_loop, fabric_fanout, fabric_shard, faa_storm, incast_scenario, insert_churn,
    lookup_miss_storm, lookup_miss_storm_direct, loss_sweep, remote_ops, server_failover,
    PerfResult,
};
use extmem_sim::{with_sched_backend, SchedBackend};

/// Worker count for the parallel leg: `EXTMEM_SCHED_THREADS`, default 2.
fn parallel_threads() -> usize {
    std::env::var("EXTMEM_SCHED_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn assert_backend_equivalent(name: &str, run: impl Fn() -> PerfResult) {
    let wheel = with_sched_backend(SchedBackend::Wheel, &run);
    let heap = with_sched_backend(SchedBackend::Heap, &run);
    let threads = parallel_threads();
    let par = with_sched_backend(SchedBackend::Parallel(threads), &run);
    assert_eq!(
        wheel.digest, heap.digest,
        "{name}: trace digests diverged between wheel and heap backends"
    );
    assert_eq!(
        wheel.digest, par.digest,
        "{name}: trace digests diverged between wheel and parallel({threads}) backends"
    );
    assert_ne!(wheel.digest, 0, "{name}: digest must fingerprint the run");
    assert_eq!(
        wheel.events, heap.events,
        "{name}: event counts diverged between backends"
    );
    assert_eq!(
        wheel.events, par.events,
        "{name}: event counts diverged between wheel and parallel({threads})"
    );
    assert_eq!(
        wheel.packets, heap.packets,
        "{name}: delivered packets diverged between backends"
    );
    assert_eq!(
        wheel.packets, par.packets,
        "{name}: delivered packets diverged between wheel and parallel({threads})"
    );
    // ci.sh greps this line across EXTMEM_SCHED_THREADS=1,2,4 runs and
    // asserts the digests agree across thread counts as well.
    println!(
        "sched_equivalence {name} digest={:016x} events={} packets={}",
        wheel.digest, wheel.events, wheel.packets
    );
}

#[test]
fn e1_write_read_loop_is_backend_invariant() {
    assert_backend_equivalent("e1_write_read_loop", || e1_write_read_loop(400));
}

#[test]
fn incast_is_backend_invariant() {
    assert_backend_equivalent("incast", incast_scenario);
}

#[test]
fn lookup_miss_storm_is_backend_invariant() {
    assert_backend_equivalent("lookup_miss_storm", || lookup_miss_storm(250));
}

#[test]
fn lookup_miss_storm_direct_is_backend_invariant() {
    assert_backend_equivalent("lookup_miss_storm_direct", || lookup_miss_storm_direct(250));
}

#[test]
fn remote_ops_is_backend_invariant() {
    // The op engine adds a second service-time term (per-step cost times a
    // data-dependent step count) to the NIC's busy-until bookkeeping; any
    // backend-dependent completion ordering would show up as a digest
    // divergence here first.
    assert_backend_equivalent("remote_ops", || remote_ops(250));
}

#[test]
fn insert_churn_is_backend_invariant() {
    // Relocation steps, verify READs, and the churn script all ride on
    // timers interleaved with traffic, so displacement ordering would be
    // the first casualty of a backend-dependent tie-break.
    assert_backend_equivalent("insert_churn", || insert_churn(600));
}

#[test]
fn faa_storm_is_backend_invariant() {
    assert_backend_equivalent("faa_storm", || faa_storm(1_500));
}

#[test]
fn loss_sweep_is_backend_invariant() {
    // 0.1% loss needs a few thousand frames before the deterministic RNG
    // actually drops one; below that the scenario's own invariants fail.
    assert_backend_equivalent("loss_sweep", || loss_sweep(2_000));
}

#[test]
fn server_failover_is_backend_invariant() {
    // Crash detection, probing, and rejoin all ride on timers, so this is
    // the scenario most likely to expose backend-dependent timer ordering.
    assert_backend_equivalent("server_failover", || server_failover(1_200));
}

#[test]
fn fabric_fanout_is_backend_invariant() {
    // The multi-pod ring pins its own thread count (it *is* the parallel
    // workhorse), so the ambient-backend legs exercise the nested-override
    // path: whatever backend the equivalence harness sets, the scenario's
    // `with_sched_backend(Parallel(n))` wrapper must win and the digest
    // must still match the sequential baselines bit for bit.
    assert_backend_equivalent("fabric_fanout", || {
        fabric_fanout(150, parallel_threads())
    });
}

#[test]
fn fabric_shard_is_backend_invariant() {
    // The sharded leaf–spine fabric adds two wrinkles the other scenarios
    // don't have: consistent-hash routing over a 2^20-flow synthesized
    // Zipf population (the rejection sampler draws a variable number of
    // RNG values per pick) and a mid-run program mutation (spare-shard
    // activation between run_until calls). Both must be invisible to the
    // backend choice.
    assert_backend_equivalent("fabric_shard", || fabric_shard(300, parallel_threads()));
}

#[test]
fn fabric_fanout_speedup_on_multicore() {
    // The tentpole perf claim: ≥3× events/sec at 4 workers vs 1 on a box
    // with at least 4 cores. On smaller machines (including the 1-core CI
    // container) the parallel engine still has to be *correct* — the
    // digest assertions above run everywhere — but the throughput claim is
    // only meaningful with real hardware parallelism, so gate on it.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("fabric_fanout_speedup_on_multicore: skipped ({cores} cores < 4)");
        return;
    }
    // Best-of-3 each to shake scheduler noise, at perf scale.
    let best = |threads: usize| {
        (0..3)
            .map(|_| fabric_fanout(2_000, threads))
            .map(|r| r.events_per_sec())
            .fold(0f64, f64::max)
    };
    let seq = best(1);
    let par = best(4);
    assert!(
        par >= 3.0 * seq,
        "parallel speedup below 3x: {seq:.0} events/s at 1 thread, {par:.0} at 4"
    );
}
