//! A reusable per-port transmit queue.
//!
//! The engine allows one packet in serialization per port; `TxQueue` is the
//! standard way for a node to queue behind it. Hosts use it unbounded; the
//! switch's traffic manager implements its own shared-buffer queues instead
//! (it needs global buffer accounting), but end-host NICs and RNIC transmit
//! paths all embed this type.

use crate::node::NodeCtx;
use extmem_types::PortId;
use extmem_wire::Packet;
use std::collections::VecDeque;

/// FIFO transmit queue for one port, with optional byte cap.
#[derive(Debug)]
pub struct TxQueue {
    port: PortId,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    cap_bytes: Option<u64>,
    /// Packets dropped because the cap was exceeded.
    pub drops: u64,
}

impl TxQueue {
    /// An unbounded queue for `port`.
    pub fn new(port: PortId) -> TxQueue {
        TxQueue {
            port,
            queue: VecDeque::new(),
            queued_bytes: 0,
            cap_bytes: None,
            drops: 0,
        }
    }

    /// A queue that drops (tail-drop) once `cap_bytes` of packets are queued.
    pub fn bounded(port: PortId, cap_bytes: u64) -> TxQueue {
        TxQueue {
            cap_bytes: Some(cap_bytes),
            ..TxQueue::new(port)
        }
    }

    /// The port this queue feeds.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Queue (or immediately transmit) `packet`. Returns `false` if the
    /// packet was tail-dropped by the byte cap.
    pub fn send(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) -> bool {
        if !ctx.tx_busy(self.port) && self.queue.is_empty() {
            ctx.start_tx(self.port, packet);
            return true;
        }
        if let Some(cap) = self.cap_bytes {
            if self.queued_bytes + packet.len() as u64 > cap {
                self.drops += 1;
                return false;
            }
        }
        self.queued_bytes += packet.len() as u64;
        self.queue.push_back(packet);
        true
    }

    /// Call from the node's `on_tx_done` for this port: starts the next
    /// queued packet, if any.
    pub fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(pkt) = self.queue.pop_front() {
            self.queued_bytes -= pkt.len() as u64;
            ctx.start_tx(self.port, pkt);
        }
    }

    /// Bytes currently waiting (excludes the packet in serialization).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently waiting.
    pub fn queued_packets(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Discard everything queued (crash path: a powered-off NIC forgets its
    /// transmit ring). The packet already in serialization, if any, is the
    /// engine's — its TxDone still fires and frees the port.
    pub fn clear(&mut self) {
        self.queue.clear();
        self.queued_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::link::LinkSpec;
    use crate::node::Node;
    use extmem_types::TimeDelta;

    /// A node that pushes `n` packets into its TxQueue at t=0.
    struct Pusher {
        q: TxQueue,
        n: usize,
        size: usize,
    }

    impl Node for Pusher {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
            for _ in 0..self.n {
                self.q.send(ctx, Packet::zeroed(self.size));
            }
        }
        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _: PortId) {
            self.q.on_tx_done(ctx);
        }
        fn name(&self) -> &str {
            "pusher"
        }
    }

    struct Counter {
        rx: u64,
    }
    impl Node for Counter {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {
            self.rx += 1;
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    fn run(n: usize, cap: Option<u64>) -> (u64, u64) {
        let mut b = SimBuilder::new(0);
        let q = match cap {
            Some(c) => TxQueue::bounded(PortId(0), c),
            None => TxQueue::new(PortId(0)),
        };
        let p = b.add_node(Box::new(Pusher { q, n, size: 1000 }));
        let c = b.add_node(Box::new(Counter { rx: 0 }));
        b.connect(p, PortId(0), c, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(p, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        let rx = sim.node::<Counter>(c).rx;
        let drops = sim.node::<Pusher>(p).q.drops;
        (rx, drops)
    }

    #[test]
    fn unbounded_delivers_everything_in_order() {
        let (rx, drops) = run(50, None);
        assert_eq!(rx, 50);
        assert_eq!(drops, 0);
    }

    #[test]
    fn bounded_tail_drops() {
        // First packet goes straight to the wire; 3 fit in the 3000B queue;
        // the rest drop.
        let (rx, drops) = run(10, Some(3000));
        assert_eq!(rx, 4);
        assert_eq!(drops, 6);
    }

    #[test]
    fn accounting_is_consistent() {
        let q = TxQueue::bounded(PortId(0), 100);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
        assert_eq!(q.queued_packets(), 0);
        assert_eq!(q.port(), PortId(0));
    }
}
