//! Point-to-point links: rate, propagation delay, fault injection, stats.

use extmem_types::{NodeId, PortId, Rate, TimeDelta};

/// Fault-injection parameters for one link (both directions), mirroring the
/// smoltcp example knobs: random drop, random single-byte corruption, and
/// random reordering (an extra delivery delay letting later packets
/// overtake).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that a packet is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that one random byte of a packet is flipped.
    pub corrupt_prob: f64,
    /// Probability in `[0, 1]` that a delivered packet is held for an extra
    /// [`FaultSpec::reorder_delay`], so packets sent just after it arrive
    /// first.
    pub reorder_prob: f64,
    /// Extra delivery delay applied to reordered packets. A delay shorter
    /// than one serialization time cannot actually reorder anything.
    pub reorder_delay: TimeDelta,
    /// Probability in `[0, 1]` that a delivered packet is delivered *twice*
    /// (the duplicate arrives immediately after the original, as a replayed
    /// frame would). Exercises the requesters' duplicate-response dedup and
    /// the responders' duplicate-PSN path.
    pub duplicate_prob: f64,
}

impl FaultSpec {
    /// No faults (the default).
    pub const NONE: FaultSpec = FaultSpec {
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        reorder_prob: 0.0,
        reorder_delay: TimeDelta::ZERO,
        duplicate_prob: 0.0,
    };

    /// Drop-only faults at probability `p`.
    pub fn drop(p: f64) -> FaultSpec {
        FaultSpec {
            drop_prob: p,
            ..FaultSpec::NONE
        }
    }

    /// Whether any fault injection is enabled.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.reorder_prob > 0.0
            || self.duplicate_prob > 0.0
    }

    /// Panic if probabilities are outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drop_prob)
                && (0.0..=1.0).contains(&self.corrupt_prob)
                && (0.0..=1.0).contains(&self.reorder_prob)
                && (0.0..=1.0).contains(&self.duplicate_prob),
            "fault probabilities must be within [0, 1]"
        );
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// Static description of a link used at topology-build time.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Line rate (serialization speed), e.g. 40 Gbps in the paper testbed.
    pub rate: Rate,
    /// One-way propagation delay. Data-center ToR-to-server cables are short;
    /// the default scenario uses 300 ns (~60 m of fiber plus PHY latency).
    pub propagation: TimeDelta,
    /// Fault injection for this link.
    pub faults: FaultSpec,
    /// Optional distinct rate for the B→A direction (`None` = symmetric).
    /// Fabric topologies use this for per-direction bandwidth — e.g. an
    /// oversubscribed downlink paired with a full-rate uplink.
    pub reverse_rate: Option<Rate>,
}

impl LinkSpec {
    /// A fault-free link at `rate` with the given propagation delay.
    pub fn new(rate: Rate, propagation: TimeDelta) -> LinkSpec {
        LinkSpec {
            rate,
            propagation,
            faults: FaultSpec::NONE,
            reverse_rate: None,
        }
    }

    /// An asymmetric fault-free link: `rate` serializes A→B traffic,
    /// `reverse` serializes B→A.
    pub fn asymmetric(rate: Rate, reverse: Rate, propagation: TimeDelta) -> LinkSpec {
        LinkSpec {
            rate,
            propagation,
            faults: FaultSpec::NONE,
            reverse_rate: Some(reverse),
        }
    }

    /// The serialization rate for traffic leaving link end `end` (0 = the
    /// `a` side of `connect`, 1 = the `b` side).
    pub fn rate_from(&self, end: usize) -> Rate {
        if end == 1 {
            self.reverse_rate.unwrap_or(self.rate)
        } else {
            self.rate
        }
    }

    /// The standard testbed link: 40 Gbps, 300 ns propagation.
    pub fn testbed_40g() -> LinkSpec {
        LinkSpec::new(Rate::from_gbps(40), TimeDelta::from_nanos(300))
    }
}

/// One endpoint of a link: which node and which of its ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// The attached node.
    pub node: NodeId,
    /// The node-local port index.
    pub port: PortId,
}

/// Per-direction delivery statistics, kept by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets handed to the link for transmission.
    pub tx_packets: u64,
    /// Bytes handed to the link for transmission.
    pub tx_bytes: u64,
    /// Packets delivered to the far end.
    pub delivered_packets: u64,
    /// Bytes delivered to the far end.
    pub delivered_bytes: u64,
    /// Packets dropped by fault injection.
    pub dropped_packets: u64,
    /// Packets corrupted by fault injection (still delivered).
    pub corrupted_packets: u64,
    /// Packets delayed by reorder injection (still delivered).
    pub reordered_packets: u64,
    /// Extra copies delivered by duplicate injection.
    pub duplicated_packets: u64,
    /// Packets dropped because the link was administratively down.
    pub admin_drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_defaults_and_validation() {
        assert!(!FaultSpec::default().is_active());
        FaultSpec::NONE.validate();
        let f = FaultSpec {
            drop_prob: 0.1,
            corrupt_prob: 0.0,
            ..FaultSpec::NONE
        };
        assert!(f.is_active());
        f.validate();
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_probability_panics() {
        FaultSpec {
            drop_prob: 1.5,
            corrupt_prob: 0.0,
            ..FaultSpec::NONE
        }
        .validate();
    }

    #[test]
    fn testbed_link_matches_paper() {
        let l = LinkSpec::testbed_40g();
        assert_eq!(l.rate, Rate::from_gbps(40));
        assert_eq!(l.propagation, TimeDelta::from_nanos(300));
        assert!(!l.faults.is_active());
    }
}
