//! **Topology as data**: leaf–spine fabric construction from a spec.
//!
//! Scenario code so far wired every switch and host by hand; at fleet
//! scale (dozens of switches, hundreds of hosts) that is unreadable and
//! error-prone. [`FabricSpec`] describes a two-tier Clos fabric — pods of
//! ToR ("leaf") switches with their hosts, plus a spine layer — and
//! [`FabricSpec::build`] materializes it into a [`SimBuilder`], calling
//! user factories for each node's behavior. Links carry per-direction
//! bandwidth ([`LinkSpec::reverse_rate`]) so downlinks and uplinks can be
//! provisioned independently.
//!
//! Node-addition order is pod-major (each leaf followed by its hosts,
//! spines last), which is what the parallel scheduler's contiguous
//! node-range partitioning wants: a pod's heavy intra-pod traffic stays
//! within one partition, only leaf↔spine links cross.
//!
//! Port conventions (stable, relied on by scenarios):
//! * leaf `l` port `i`, `i < hosts_per_leaf` ↔ host `(l, i)` port 0
//! * leaf `l` port `hosts_per_leaf + s` ↔ spine `s` port `l`

use crate::engine::SimBuilder;
use crate::link::LinkSpec;
use crate::node::Node;
use extmem_types::{NodeId, PortId, TimeDelta};

/// Static description of a leaf–spine fabric.
#[derive(Clone, Debug)]
pub struct FabricSpec {
    /// Number of leaf (ToR) switches. Each leaf and its hosts form a pod.
    pub leaves: usize,
    /// Number of spine switches (each connects to every leaf).
    pub spines: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host↔leaf link. The `rate` direction is leaf→host (downlink);
    /// `reverse_rate`, when set, is host→leaf (uplink).
    pub host_link: LinkSpec,
    /// Leaf↔spine link. The `rate` direction is leaf→spine (uplink);
    /// `reverse_rate`, when set, is spine→leaf (downlink).
    pub up_link: LinkSpec,
}

impl FabricSpec {
    /// A symmetric fabric with 40 G everywhere (the testbed default).
    pub fn testbed(leaves: usize, spines: usize, hosts_per_leaf: usize) -> FabricSpec {
        FabricSpec {
            leaves,
            spines,
            hosts_per_leaf,
            host_link: LinkSpec::testbed_40g(),
            up_link: LinkSpec::testbed_40g(),
        }
    }

    /// The leaf-side port facing host `i` of the pod.
    pub fn host_port(&self, i: usize) -> PortId {
        assert!(i < self.hosts_per_leaf, "host index out of range");
        PortId(i as u16)
    }

    /// The leaf-side port facing spine `s`.
    pub fn uplink_port(&self, s: usize) -> PortId {
        assert!(s < self.spines, "spine index out of range");
        PortId((self.hosts_per_leaf + s) as u16)
    }

    /// The spine-side port facing leaf `l`.
    pub fn spine_port(&self, l: usize) -> PortId {
        assert!(l < self.leaves, "leaf index out of range");
        PortId(l as u16)
    }

    /// Total ports on each leaf.
    pub fn leaf_ports(&self) -> usize {
        self.hosts_per_leaf + self.spines
    }

    /// Materialize the fabric into `b`. The factories supply each node's
    /// behavior: `leaf(l)`, `spine(s)`, and `host(l, i)` for host `i` of
    /// pod `l`.
    pub fn build(
        &self,
        b: &mut SimBuilder,
        mut leaf: impl FnMut(usize) -> Box<dyn Node>,
        mut spine: impl FnMut(usize) -> Box<dyn Node>,
        mut host: impl FnMut(usize, usize) -> Box<dyn Node>,
    ) -> Fabric {
        assert!(self.leaves > 0, "fabric needs at least one leaf");
        assert!(self.hosts_per_leaf > 0, "fabric needs hosts");
        assert!(
            self.leaves == 1 || self.spines > 0,
            "a multi-leaf fabric needs a spine layer"
        );
        // The parallel backend requires positive propagation on every link
        // that might cross a partition boundary; enforce it up front so a
        // fabric built here is always backend-portable.
        assert!(
            self.host_link.propagation > TimeDelta::ZERO
                && self.up_link.propagation > TimeDelta::ZERO,
            "fabric links need positive propagation (parallel-backend lookahead)"
        );

        // Pod-major addition order: leaf, then its hosts.
        let mut leaves = Vec::with_capacity(self.leaves);
        let mut hosts = Vec::with_capacity(self.leaves);
        for l in 0..self.leaves {
            let leaf_id = b.add_node(leaf(l));
            leaves.push(leaf_id);
            let mut pod = Vec::with_capacity(self.hosts_per_leaf);
            for i in 0..self.hosts_per_leaf {
                let h = b.add_node(host(l, i));
                b.connect(leaf_id, self.host_port(i), h, PortId(0), self.host_link);
                pod.push(h);
            }
            hosts.push(pod);
        }
        let mut spines = Vec::with_capacity(self.spines);
        for s in 0..self.spines {
            let spine_id = b.add_node(spine(s));
            for (l, &leaf_id) in leaves.iter().enumerate() {
                b.connect(
                    leaf_id,
                    self.uplink_port(s),
                    spine_id,
                    self.spine_port(l),
                    self.up_link,
                );
            }
            spines.push(spine_id);
        }
        Fabric {
            spec: self.clone(),
            leaves,
            spines,
            hosts,
        }
    }
}

/// The node handles of a built fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    /// The spec the fabric was built from.
    pub spec: FabricSpec,
    /// Leaf switch ids, by pod.
    pub leaves: Vec<NodeId>,
    /// Spine switch ids.
    pub spines: Vec<NodeId>,
    /// Host ids: `hosts[l][i]` is host `i` of pod `l`.
    pub hosts: Vec<Vec<NodeId>>,
}

impl Fabric {
    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.leaves.len() + self.spines.len() + self.hosts.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeCtx;
    use crate::queue::TxQueue;
    use extmem_types::Time;
    use extmem_wire::Packet;

    /// Forwards every packet arriving on port `i` out `map[i]`.
    struct Relay {
        map: Vec<u16>,
        qs: Vec<TxQueue>,
    }

    impl Relay {
        fn new(map: Vec<u16>) -> Relay {
            let qs = (0..map.len() as u16).map(|p| TxQueue::new(PortId(p))).collect();
            Relay { map, qs }
        }
    }

    impl Node for Relay {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, pkt: Packet) {
            let out = self.map[port.raw() as usize] as usize;
            self.qs[out].send(ctx, pkt);
        }
        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, port: PortId) {
            self.qs[port.raw() as usize].on_tx_done(ctx);
        }
        fn name(&self) -> &str {
            "relay"
        }
    }

    struct Pinger {
        tx: TxQueue,
        sent: u64,
    }
    impl Node for Pinger {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
            self.sent += 1;
            self.tx.send(ctx, Packet::from_vec(vec![0u8; 64]));
        }
        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _: PortId) {
            self.tx.on_tx_done(ctx);
        }
        fn name(&self) -> &str {
            "pinger"
        }
    }

    struct Counter {
        rx: u64,
    }
    impl Node for Counter {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {
            self.rx += 1;
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn builds_the_advertised_shape() {
        let spec = FabricSpec::testbed(4, 2, 3);
        let mut b = SimBuilder::new(1);
        let f = spec.build(
            &mut b,
            |_| Box::new(Counter { rx: 0 }),
            |_| Box::new(Counter { rx: 0 }),
            |_, _| Box::new(Counter { rx: 0 }),
        );
        assert_eq!(f.leaves.len(), 4);
        assert_eq!(f.spines.len(), 2);
        assert_eq!(f.hosts.iter().map(Vec::len).sum::<usize>(), 12);
        assert_eq!(f.node_count(), 18);
        // Pod-major order: leaf 0 first, its hosts next.
        assert!(f.leaves[0].raw() < f.hosts[0][0].raw());
        assert!(f.hosts[0][2].raw() < f.leaves[1].raw());
        assert!(f.leaves[3].raw() < f.spines[0].raw());
        let _ = b.build();
    }

    #[test]
    fn a_packet_crosses_pods_via_the_spine() {
        // Pod 0 host 0 pings pod 1 host 0 through spine 0: the leaf relays
        // host port 0 → uplink 0, the spine relays leaf 0 → leaf 1, the
        // destination leaf relays its uplink back down to host port 0.
        let spec = FabricSpec::testbed(2, 1, 1);
        let mut b = SimBuilder::new(7);
        let f = spec.build(
            &mut b,
            // Port 0 = host, port 1 = spine 0 — both leaves relay the
            // same way: host traffic up, spine traffic down.
            |_| Box::new(Relay::new(vec![1, 0])),
            |_| Box::new(Relay::new(vec![1, 0])),
            |l, _| {
                if l == 0 {
                    Box::new(Pinger {
                        tx: TxQueue::new(PortId(0)),
                        sent: 0,
                    }) as Box<dyn Node>
                } else {
                    Box::new(Counter { rx: 0 })
                }
            },
        );
        let mut sim = b.build();
        sim.schedule_timer(f.hosts[0][0], TimeDelta::ZERO, 0);
        sim.run_until(Time::from_micros(100));
        assert_eq!(sim.node::<Counter>(f.hosts[1][0]).rx, 1);
    }

    #[test]
    fn asymmetric_links_serialize_per_direction() {
        // 40G down / 10G up host link: the host→leaf direction takes 4×
        // longer to serialize the same frame.
        let spec = LinkSpec::asymmetric(
            extmem_types::Rate::from_gbps(40),
            extmem_types::Rate::from_gbps(10),
            TimeDelta::from_nanos(300),
        );
        assert_eq!(
            spec.rate_from(1).time_to_send(1500),
            spec.rate_from(0).time_to_send(1500) * 4
        );
    }
}
