//! The simulation engine: topology registry plus the event loop(s).
//!
//! Under [`SchedBackend::Wheel`](crate::SchedBackend) and
//! [`SchedBackend::Heap`](crate::SchedBackend) this is the classic
//! single-threaded discrete-event loop. Under
//! [`SchedBackend::Parallel`](crate::SchedBackend) the node graph is split
//! into contiguous partitions that advance concurrently under conservative
//! (link-latency lookahead) synchronization — see `crate::partition` for the
//! synchronization protocol and `crate::trace` for why the determinism
//! digest is bit-identical across all three backends.

use crate::event::{tie, EventKind, EventQueue, SchedStats, Scheduled, TimerHandle, NO_LANE};
use crate::link::{Endpoint, LinkSpec, LinkStats};
use crate::node::{Node, NodeCtx};
use crate::partition::{
    part_of, stream_seed, ChannelMeta, CrossMsg, Inbox, LinkInfo, Outbox, PanicFuse, ParStats,
    PortSlotStatic, SyncShared, Topo, STREAM_FAULTS, STREAM_NODE,
};
use crate::trace::{TraceEvent, TraceSink};
use extmem_types::{LinkId, NodeId, PortId, Rate, Time, TimeDelta};
use extmem_wire::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;

/// Bytes of Ethernet + IPv4 + UDP headers. Injected corruption lands past
/// this prefix (see the comment at the injection site in [`EngineCore::start_tx`]).
const CLASSIFICATION_PREFIX: usize = 14 + 20 + 8;

/// FIFO lane ids: two per link direction.
const LANE_DELIVER: u32 = 0;
const LANE_TX_DONE: u32 = 1;

fn lane_of(link: usize, end: usize, kind: u32) -> u32 {
    (link as u32) * 4 + (end as u32) * 2 + kind
}

/// Events dispatched per worker-loop iteration before bounds are
/// re-published. Large enough to amortize the atomics, small enough that
/// neighbors' dispatch bounds stay fresh.
const BATCH: u64 = 256;

/// Bounded SPSC capacity per cross-partition channel.
const CHANNEL_CAP: usize = 1024;

/// Mutable per-link-direction state. A direction (`link * 2 + transmitting
/// end`) is owned by the partition owning its transmitting node, so none of
/// this needs locks: stats, admin state, the fault RNG stream and the tie
/// sequence counters are only ever touched by the owner.
struct DirState {
    stats: LinkStats,
    /// Administrative state: while `false`, transmissions are dropped on
    /// the floor (the port still cycles so senders don't wedge).
    admin_up: bool,
    /// Fault-injection RNG stream, seeded per direction so fault draws are
    /// a function of this direction's transmit sequence alone.
    rng: StdRng,
    deliver_seq: u32,
    txdone_seq: u32,
}

/// Parallel-engine counters accumulated by one partition.
struct ParAccum {
    cross_messages: u64,
    min_margin: u64,
    iterations: u64,
    channel_stalls: u64,
}

impl Default for ParAccum {
    fn default() -> Self {
        ParAccum {
            cross_messages: 0,
            min_margin: u64::MAX,
            iterations: 0,
            channel_stalls: 0,
        }
    }
}

/// Engine internals shared with [`NodeCtx`]. Split from [`Partition`] so a
/// node callback can borrow the core mutably while the node itself is
/// temporarily detached from the node table.
///
/// One `EngineCore` exists per partition. Its per-node and per-direction
/// tables are allocated full-size (indexed by global id); only the entries
/// the partition owns are ever used.
pub struct EngineCore {
    pub(crate) now: Time,
    /// This partition's id.
    part: u32,
    topo: Arc<Topo>,
    queue: EventQueue,
    dirs: Vec<DirState>,
    /// `busy[node][port]`: whether a transmit is in flight, shaped like
    /// `topo.ports`.
    busy: Vec<Vec<bool>>,
    /// Per-node crash flag: while set, the node's deliveries and timers are
    /// blackholed (counted in `crash_drops`) instead of dispatched.
    crashed: Vec<bool>,
    /// Deliveries + timers discarded per node while it was crashed.
    crash_drops: Vec<u64>,
    /// Per-node RNG streams backing [`NodeCtx::rng`]; per-node (rather than
    /// one engine-global stream) so a node's draws depend only on its own
    /// callback sequence, not on how partitions interleave.
    pub(crate) node_rng: Vec<StdRng>,
    /// Per-node timer tie counters (plain + cancellable share one stream).
    timer_seq: Vec<u32>,
    trace: TraceSink,
    events_processed: u64,
    /// `outboxes[q]`: sending half of the channel to partition `q`.
    outboxes: Vec<Option<Outbox>>,
    inboxes: Vec<Inbox>,
    /// `None` on the single-partition path: no atomics on that hot loop.
    sync: Option<Arc<SyncShared>>,
    par: ParAccum,
}

impl EngineCore {
    pub(crate) fn set_tx_idle(&mut self, node: NodeId, port: PortId) {
        self.busy[node.raw() as usize][port.raw() as usize] = false;
    }

    pub(crate) fn tx_busy(&self, node: NodeId, port: PortId) -> bool {
        self.topo.slot(node, port).is_some()
            && self.busy[node.raw() as usize][port.raw() as usize]
    }

    pub(crate) fn port_link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.topo.slot(node, port).map(|s| LinkId(s.link))
    }

    pub(crate) fn link_rate(&self, node: NodeId, port: PortId) -> Rate {
        let slot = self
            .topo
            .slot(node, port)
            .unwrap_or_else(|| panic!("link_rate on unconnected port {node:?}/{port:?}"));
        self.topo.links[slot.link as usize]
            .spec
            .rate_from(slot.end as usize)
    }

    pub(crate) fn start_tx(&mut self, node: NodeId, port: PortId, packet: Packet) {
        let slot = self
            .topo
            .slot(node, port)
            .unwrap_or_else(|| panic!("start_tx on unconnected port {node:?}/{port:?}"));
        let busy = &mut self.busy[node.raw() as usize][port.raw() as usize];
        assert!(!*busy, "start_tx while port busy: {node:?}/{port:?}");
        *busy = true;
        let (lid, end) = (slot.link as usize, slot.end as usize);
        let dir = lid * 2 + end;
        let (ser, prop, faults, dst) = {
            let l = &self.topo.links[lid];
            (
                l.spec.rate_from(end).time_to_send(packet.len()),
                l.spec.propagation,
                l.spec.faults,
                l.ends[1 - end],
            )
        };
        let done_at = self.now + ser;

        {
            let ds = &mut self.dirs[dir];
            ds.stats.tx_packets += 1;
            ds.stats.tx_bytes += packet.len() as u64;
            if !ds.admin_up {
                // Administratively down: the bits leave the transceiver and
                // die. TxDone still fires so the sender's port cycles
                // normally.
                ds.stats.admin_drops += 1;
                self.push_tx_done(dir, done_at, node, port);
                return;
            }
        }

        // Fault injection is decided at transmit time, drawing from this
        // direction's own RNG stream, so the draw order is a deterministic
        // function of the direction's transmit sequence — identical in
        // every backend.
        let base_arrival = done_at + prop;
        let mut arrival = base_arrival;
        let mut deliver = Some(packet);
        let mut duplicate = false;
        if faults.is_active() {
            let ds = &mut self.dirs[dir];
            if faults.reorder_prob > 0.0 && ds.rng.gen_bool(faults.reorder_prob) {
                // Held back: packets serialized after this one overtake it.
                arrival += faults.reorder_delay;
                ds.stats.reordered_packets += 1;
            }
            if faults.drop_prob > 0.0 && ds.rng.gen_bool(faults.drop_prob) {
                ds.stats.dropped_packets += 1;
                deliver = None;
            } else if faults.corrupt_prob > 0.0 && ds.rng.gen_bool(faults.corrupt_prob) {
                let mut pkt = deliver.take().unwrap();
                if !pkt.is_empty() {
                    // Our frames carry no Ethernet FCS: on a real wire a
                    // flipped classification bit (MAC, ethertype, IP/UDP
                    // headers) dies at the receiving MAC before any layer
                    // sees it. The injector therefore models the post-FCS
                    // corruption domain — the in-network bit flips that
                    // only an end-to-end check (ICRC) catches — and flips
                    // bits past the L2/L3/L4 classification prefix.
                    let lo = if pkt.len() > CLASSIFICATION_PREFIX {
                        CLASSIFICATION_PREFIX
                    } else {
                        0
                    };
                    let idx = ds.rng.gen_range(lo..pkt.len());
                    pkt.as_mut_slice()[idx] ^= 1 << ds.rng.gen_range(0..8u8);
                    ds.stats.corrupted_packets += 1;
                }
                deliver = Some(pkt);
            }
            // A replayed frame: the same packet arrives twice, back to back.
            duplicate = deliver.is_some()
                && faults.duplicate_prob > 0.0
                && ds.rng.gen_bool(faults.duplicate_prob);
        }

        if let Some(pkt) = deliver {
            // Deliveries on one link direction arrive in transmit order
            // (each serialization finishes before the next begins), so they
            // ride the FIFO lane — unless a reorder fault broke the order.
            let lane = if arrival == base_arrival {
                lane_of(lid, end, LANE_DELIVER)
            } else {
                NO_LANE
            };
            let copy = duplicate.then(|| pkt.clone());
            let from = Endpoint { node, port };
            self.deliver(dir, arrival, lane, from, dst, pkt);
            if let Some(copy) = copy {
                // The copy lands at the same instant but strictly after the
                // original in the total order (later per-direction seq). It
                // bypasses the FIFO lane: lanes require non-decreasing push
                // times and the next real delivery may be earlier-keyed.
                self.dirs[dir].stats.duplicated_packets += 1;
                self.deliver(dir, arrival, NO_LANE, from, dst, copy);
            }
        }
        // TxDone per port is likewise monotone: one transmit in flight.
        self.push_tx_done(dir, done_at, node, port);
    }

    /// Account, trace, and route one delivery: into the local queue when
    /// the destination node is ours, across the SPSC channel otherwise. The
    /// tie key and trace fold happen *here*, on the transmit side, so they
    /// are functions of the simulation alone.
    fn deliver(&mut self, dir: usize, at: Time, lane: u32, from: Endpoint, to: Endpoint, pkt: Packet) {
        let tie_key = {
            let ds = &mut self.dirs[dir];
            ds.stats.delivered_packets += 1;
            ds.stats.delivered_bytes += pkt.len() as u64;
            let s = ds.deliver_seq;
            ds.deliver_seq = s.checked_add(1).expect("deliver seq overflow");
            tie::pack(tie::CLASS_DELIVER, dir as u32, s)
        };
        // `pkt.digest()` is cached across hops, and the parts-based record
        // avoids building a TraceEvent when recording is off.
        self.trace
            .record_delivery(dir, at, from, to, pkt.len(), pkt.digest());
        let dst_part = self.topo.node_part[to.node.raw() as usize];
        if dst_part == self.part {
            let kind = EventKind::Deliver {
                node: to.node,
                port: to.port,
                packet: pkt,
            };
            if lane == NO_LANE {
                self.queue.push_keyed(at, tie_key, kind);
            } else {
                self.queue.push_lane_keyed(at, lane, tie_key, kind);
            }
        } else {
            self.send_cross(
                dst_part as usize,
                CrossMsg {
                    at,
                    tie: tie_key,
                    lane,
                    node: to.node,
                    port: to.port,
                    packet: pkt,
                },
            );
        }
    }

    fn push_tx_done(&mut self, dir: usize, at: Time, node: NodeId, port: PortId) {
        let ds = &mut self.dirs[dir];
        let s = ds.txdone_seq;
        ds.txdone_seq = s.checked_add(1).expect("tx-done seq overflow");
        let t = tie::pack(tie::CLASS_TX_DONE, dir as u32, s);
        self.queue.push_lane_keyed(
            at,
            lane_of(dir / 2, dir & 1, LANE_TX_DONE),
            t,
            EventKind::TxDone { node, port },
        );
    }

    /// Ship a delivery to partition `dst`. A full channel never deadlocks:
    /// the sender drains its own inboxes (so the peer blocked on *us* can
    /// make progress) and retries. `sent` is bumped before the enqueue so
    /// the termination scan never sees the channel balanced while a message
    /// is in flight.
    fn send_cross(&mut self, dst: usize, mut msg: CrossMsg) {
        self.par.cross_messages += 1;
        self.outboxes[dst]
            .as_ref()
            .expect("cross send without a channel")
            .sent
            .fetch_add(1, SeqCst);
        loop {
            // Re-indexed each attempt so the outbox borrow ends before the
            // inbox drain borrows `self` again.
            let ob = self.outboxes[dst].as_ref().expect("cross send channel");
            match ob.tx.try_send(msg) {
                Ok(()) => return,
                Err(TrySendError::Full(m)) => {
                    msg = m;
                    self.par.channel_stalls += 1;
                    self.drain_inboxes();
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => {
                    unreachable!("cross-partition receiver outlives the run")
                }
            }
        }
    }

    /// Absorb every waiting cross-partition delivery into the local queue.
    /// Returns how many were absorbed.
    fn drain_inboxes(&mut self) -> u64 {
        let mut drained = 0u64;
        for i in 0..self.inboxes.len() {
            while let Ok(msg) = self.inboxes[i].rx.try_recv() {
                if drained == 0 {
                    if let Some(sync) = &self.sync {
                        // Lower the finished flag and bump progress BEFORE
                        // the first `recv` increment of this batch: a
                        // termination scan that saw the channel balanced can
                        // then never pair with a second scan that still sees
                        // this partition finished.
                        sync.finished[self.part as usize].store(false, SeqCst);
                        sync.progress[self.part as usize].fetch_add(1, SeqCst);
                    }
                }
                drained += 1;
                let kind = EventKind::Deliver {
                    node: msg.node,
                    port: msg.port,
                    packet: msg.packet,
                };
                if msg.lane == NO_LANE {
                    self.queue.push_keyed(msg.at, msg.tie, kind);
                } else {
                    self.queue.push_lane_keyed(msg.at, msg.lane, msg.tie, kind);
                }
                self.inboxes[i].recv.fetch_add(1, SeqCst);
            }
        }
        drained
    }

    /// Publish this partition's null-message bounds: the earliest thing it
    /// may still send to neighbor `q` is `min(own queue head, own dispatch
    /// bound) + lookahead(me → q)`. Runs *before* each dispatch batch, which
    /// (with the pre-batch peek) keeps the published bound monotone.
    fn publish_bounds(&mut self, safe: u64) {
        let peek = self.queue.peek_time().map_or(u64::MAX, |t| t.picos());
        let eot = peek.min(safe);
        let me = self.part as usize;
        if let Some(sync) = &self.sync {
            for &q in &sync.outbound[me] {
                let q = q as usize;
                let b = eot.saturating_add(sync.lookahead[me * sync.k + q]);
                sync.publish(me, q, b);
            }
        }
    }

    pub(crate) fn schedule_timer(&mut self, node: NodeId, delay: TimeDelta, token: u64) {
        let t = self.timer_tie(node);
        self.queue
            .push_keyed(self.now + delay, t, EventKind::Timer { node, token });
    }

    pub(crate) fn schedule_timer_cancellable(
        &mut self,
        node: NodeId,
        delay: TimeDelta,
        token: u64,
    ) -> TimerHandle {
        let t = self.timer_tie(node);
        self.queue.push_timer_keyed(self.now + delay, t, node, token)
    }

    fn timer_tie(&mut self, node: NodeId) -> u64 {
        let i = node.raw() as usize;
        let s = self.timer_seq[i];
        self.timer_seq[i] = s.checked_add(1).expect("timer seq overflow");
        tie::pack(tie::CLASS_TIMER, node.raw(), s)
    }

    pub(crate) fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.queue.cancel(handle)
    }
}

/// One partition: the nodes it owns plus its engine core. The whole
/// simulation is one `Partition` on the single-threaded backends.
struct Partition {
    /// Full-size table; `Some` only for owned nodes (and `None` transiently
    /// while a node runs its own callback).
    nodes: Vec<Option<Box<dyn Node>>>,
    core: EngineCore,
}

impl Partition {
    fn dispatch(&mut self, ev: Scheduled) {
        // Doubles as the conservative-safety check: a cross-partition
        // delivery drained after reading `safe` has `at >= safe > now`.
        debug_assert!(ev.at >= self.core.now, "event queue went backwards");
        self.core.now = ev.at;
        self.core.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { node, port, packet } => {
                if self.core.crashed[node.raw() as usize] {
                    // Bits arriving at a dark node fall on the floor.
                    self.core.crash_drops[node.raw() as usize] += 1;
                    drop(packet);
                    return;
                }
                self.with_node(node, |n, ctx| n.on_packet(ctx, port, packet));
            }
            EventKind::TxDone { node, port } => {
                // The wire frees up regardless; the callback is what a
                // crashed node doesn't get.
                self.core.set_tx_idle(node, port);
                if self.core.crashed[node.raw() as usize] {
                    return;
                }
                self.with_node(node, |n, ctx| n.on_tx_done(ctx, port));
            }
            EventKind::Timer { node, token } => {
                if self.core.crashed[node.raw() as usize] {
                    // Timers armed before the crash die with it.
                    self.core.crash_drops[node.raw() as usize] += 1;
                    return;
                }
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::NodeAdmin { node, up } => {
                let idx = node.raw() as usize;
                if up {
                    if self.core.crashed[idx] {
                        self.core.crashed[idx] = false;
                        self.with_node(node, |n, ctx| n.on_restart(ctx));
                    }
                } else if !self.core.crashed[idx] {
                    self.core.crashed[idx] = true;
                    self.with_node(node, |n, ctx| n.on_crash(ctx));
                }
            }
            EventKind::LinkAdmin { link, end, up } => {
                self.core.dirs[link as usize * 2 + end as usize].admin_up = up;
            }
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let slot = self
            .nodes
            .get_mut(id.raw() as usize)
            .unwrap_or_else(|| panic!("event for unknown node {id:?}"));
        let mut node = slot
            .take()
            .expect("node re-entered during its own callback");
        let mut ctx = NodeCtx {
            core: &mut self.core,
            node: id,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.raw() as usize] = Some(node);
    }

    /// Dispatch up to `limit` events at or before `deadline`, tracking the
    /// dispatch margin against the conservative bound `safe` (picoseconds).
    fn dispatch_batch(&mut self, deadline: Time, limit: u64, safe: u64) -> u64 {
        let mut n = 0;
        while n < limit {
            let Some(ev) = self.core.queue.pop_if_at_or_before(deadline) else {
                break;
            };
            if safe != u64::MAX {
                let margin = safe - ev.at.picos();
                self.core.par.min_margin = self.core.par.min_margin.min(margin);
            }
            self.dispatch(ev);
            n += 1;
        }
        n
    }

    /// One partition's worker loop: read the dispatch bound, absorb cross
    /// deliveries, publish null-message bounds, dispatch a batch strictly
    /// below the bound, and participate in termination detection.
    fn run_loop(&mut self, deadline: Time, quiesce: bool, shared: &SyncShared) {
        let me = self.core.part as usize;
        let _fuse = PanicFuse(shared);
        loop {
            if shared.done.load(SeqCst) {
                break;
            }
            self.core.par.iterations += 1;
            // Order matters: the bound is read *before* the drain, so any
            // message not yet absorbed was sent after our neighbor promised
            // `safe` — its timestamp is `>= safe` and cannot be missed by
            // the batch below.
            let safe = shared.safe_bound(me);
            let drained = self.core.drain_inboxes();
            // Publish before dispatching: the pre-batch queue head is a
            // valid (monotone) earliest-output estimate for the whole
            // batch, and neighbors see fresh bounds while we work.
            self.core.publish_bounds(safe);
            let dd = Time::from_picos(safe.saturating_sub(1).min(deadline.picos()));
            let n = self.dispatch_batch(dd, BATCH, safe);
            if n > 0 || drained > 0 {
                if n > 0 {
                    shared.finished[me].store(false, SeqCst);
                    shared.progress[me].fetch_add(1, SeqCst);
                }
                continue;
            }
            let idle = if quiesce {
                self.core.queue.is_empty()
            } else {
                self.core.queue.peek_time().is_none_or(|t| t > deadline)
            };
            shared.finished[me].store(idle, SeqCst);
            if idle && me == 0 && shared.try_terminate() {
                break;
            }
            std::thread::yield_now();
        }
    }
}

/// Builder for a [`Simulator`]: register nodes, connect ports, pick a seed.
///
/// The scheduler backend (and with it the partition count) is read from the
/// thread-local configured via [`crate::with_sched_backend`] at
/// [`SimBuilder::build`] time.
pub struct SimBuilder {
    nodes: Vec<Box<dyn Node>>,
    links: Vec<LinkInfo>,
    ports: HashMap<(NodeId, PortId), (usize, usize)>,
    seed: u64,
    keep_trace: bool,
}

impl SimBuilder {
    /// Start building a simulation with the given RNG seed.
    pub fn new(seed: u64) -> SimBuilder {
        SimBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
            ports: HashMap::new(),
            seed,
            keep_trace: false,
        }
    }

    /// Register a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with `spec`.
    ///
    /// # Panics
    ///
    /// Panics on unknown node ids, self-loops, or ports that are already
    /// connected.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        spec: LinkSpec,
    ) -> LinkId {
        spec.faults.validate();
        assert!((a.raw() as usize) < self.nodes.len(), "unknown node {a:?}");
        assert!((b.raw() as usize) < self.nodes.len(), "unknown node {b:?}");
        assert!(a != b, "self-loop links are not supported");
        let lid = self.links.len();
        for (end, ep) in [(0usize, (a, pa)), (1, (b, pb))] {
            let prev = self.ports.insert(ep, (lid, end));
            assert!(prev.is_none(), "port {:?}/{:?} connected twice", ep.0, ep.1);
        }
        self.links.push(LinkInfo {
            spec,
            ends: [
                Endpoint { node: a, port: pa },
                Endpoint { node: b, port: pb },
            ],
        });
        LinkId(lid as u32)
    }

    /// Record every delivered packet (time, endpoints, length, digest) into
    /// an in-memory trace, retrievable via [`Simulator::trace`]. Costs memory
    /// proportional to traffic; off by default. The rolling digest used by
    /// determinism tests is always maintained.
    pub fn keep_trace(&mut self, keep: bool) -> &mut Self {
        self.keep_trace = keep;
        self
    }

    /// Finish building.
    pub fn build(self) -> Simulator {
        let n = self.nodes.len();
        let threads = crate::event::current_backend().threads();
        let k = if n == 0 { 1 } else { threads.min(n) };
        let node_part: Vec<u32> = (0..n).map(|i| part_of(i, n, k)).collect();

        // Flatten the builder's port map into the dense per-node tables the
        // event loop indexes directly.
        let mut ports: Vec<Vec<Option<PortSlotStatic>>> = vec![Vec::new(); n];
        for (&(node, port), &(lid, end)) in &self.ports {
            let row = &mut ports[node.raw() as usize];
            let idx = port.raw() as usize;
            if row.len() <= idx {
                row.resize(idx + 1, None);
            }
            row[idx] = Some(PortSlotStatic {
                link: lid as u32,
                end: end as u8,
            });
        }
        let topo = Arc::new(Topo {
            links: self.links,
            ports,
            node_part,
        });
        let dirs_n = topo.dirs();

        // Lookahead matrix: min propagation over links crossing each
        // ordered partition pair. Zero-propagation links must not cross —
        // with no lookahead the conservative bound never advances past them.
        let mut lookahead = vec![u64::MAX; k * k];
        if k > 1 {
            for (lid, l) in topo.links.iter().enumerate() {
                let pa = topo.node_part[l.ends[0].node.raw() as usize] as usize;
                let pb = topo.node_part[l.ends[1].node.raw() as usize] as usize;
                if pa != pb {
                    assert!(
                        l.spec.propagation > TimeDelta::ZERO,
                        "link {lid} crosses partitions but has zero propagation delay; \
                         conservative parallel sync needs positive lookahead on every \
                         cross-partition link"
                    );
                    let la = l.spec.propagation.picos();
                    for (p, q) in [(pa, pb), (pb, pa)] {
                        let e = &mut lookahead[p * k + q];
                        *e = (*e).min(la);
                    }
                }
            }
        }

        let mut sync = SyncShared::new(k, lookahead);
        let mut outboxes: Vec<Vec<Option<Outbox>>> =
            (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
        let mut inboxes: Vec<Vec<Inbox>> = (0..k).map(|_| Vec::new()).collect();
        let pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|p| sync.outbound[p].iter().map(move |&q| (p, q as usize)))
            .collect();
        for (p, q) in pairs {
            let (tx, rx) = mpsc::sync_channel(CHANNEL_CAP);
            let sent = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let recv = Arc::new(std::sync::atomic::AtomicU64::new(0));
            sync.channels.push(ChannelMeta {
                sent: sent.clone(),
                recv: recv.clone(),
            });
            outboxes[p][q] = Some(Outbox { tx, sent });
            inboxes[q].push(Inbox { rx, recv });
        }
        let sync = (k > 1).then(|| Arc::new(sync));

        let mut parts: Vec<Partition> = (0..k)
            .map(|pid| {
                let mut queue = EventQueue::new();
                queue.ensure_lanes(topo.links.len() * 4);
                Partition {
                    nodes: (0..n).map(|_| None).collect(),
                    core: EngineCore {
                        now: Time::ZERO,
                        part: pid as u32,
                        topo: topo.clone(),
                        queue,
                        dirs: (0..dirs_n)
                            .map(|d| DirState {
                                stats: LinkStats::default(),
                                admin_up: true,
                                rng: StdRng::seed_from_u64(stream_seed(
                                    self.seed,
                                    STREAM_FAULTS,
                                    d as u64,
                                )),
                                deliver_seq: 0,
                                txdone_seq: 0,
                            })
                            .collect(),
                        busy: topo.ports.iter().map(|row| vec![false; row.len()]).collect(),
                        crashed: vec![false; n],
                        crash_drops: vec![0; n],
                        node_rng: (0..n)
                            .map(|i| {
                                StdRng::seed_from_u64(stream_seed(
                                    self.seed,
                                    STREAM_NODE,
                                    i as u64,
                                ))
                            })
                            .collect(),
                        timer_seq: vec![0; n],
                        trace: if self.keep_trace {
                            TraceSink::recording(dirs_n)
                        } else {
                            TraceSink::disabled(dirs_n)
                        },
                        events_processed: 0,
                        outboxes: Vec::new(),
                        inboxes: Vec::new(),
                        sync: sync.clone(),
                        par: ParAccum::default(),
                    },
                }
            })
            .collect();
        for (i, node) in self.nodes.into_iter().enumerate() {
            let p = topo.node_part[i] as usize;
            parts[p].nodes[i] = Some(node);
        }
        for (pid, (ob, ib)) in outboxes.into_iter().zip(inboxes).enumerate() {
            parts[pid].core.outboxes = ob;
            parts[pid].core.inboxes = ib;
        }

        Simulator {
            parts,
            topo,
            sync,
            admin_seq: vec![0; n],
            link_admin_seq: vec![0; dirs_n],
        }
    }
}

/// A runnable simulation.
pub struct Simulator {
    parts: Vec<Partition>,
    topo: Arc<Topo>,
    sync: Option<Arc<SyncShared>>,
    /// Driver-side tie counters for crash/restart events, per node.
    admin_seq: Vec<u32>,
    /// Driver-side tie counters for link admin events, per direction.
    link_admin_seq: Vec<u32>,
}

impl Simulator {
    /// Current simulated time. Between runs every partition's clock agrees;
    /// this reads partition 0's.
    pub fn now(&self) -> Time {
        self.parts[0].core.now
    }

    /// Total events processed so far, summed over partitions.
    pub fn events_processed(&self) -> u64 {
        self.parts.iter().map(|p| p.core.events_processed).sum()
    }

    fn owner(&self, node: NodeId) -> usize {
        self.topo.node_part[node.raw() as usize] as usize
    }

    /// Schedule a timer for `node` as if it had called [`NodeCtx::schedule`].
    /// Used by scenario drivers to kick off generators.
    pub fn schedule_timer(&mut self, node: NodeId, delay: TimeDelta, token: u64) {
        let p = self.owner(node);
        self.parts[p].core.schedule_timer(node, delay, token);
    }

    fn push_node_admin(&mut self, node: NodeId, up: bool, delay: TimeDelta) {
        let i = node.raw() as usize;
        let s = self.admin_seq[i];
        self.admin_seq[i] = s.checked_add(1).expect("node admin seq overflow");
        let t = tie::pack(tie::CLASS_NODE_ADMIN, node.raw(), s);
        let p = self.owner(node);
        let at = self.parts[p].core.now + delay;
        self.parts[p]
            .core
            .queue
            .push_keyed(at, t, EventKind::NodeAdmin { node, up });
    }

    /// Schedule `node` to crash after `delay`: its [`Node::on_crash`] hook
    /// runs, then every delivery and timer addressed to it is discarded
    /// until a matching [`Simulator::schedule_restart`] fires.
    pub fn schedule_crash(&mut self, node: NodeId, delay: TimeDelta) {
        self.push_node_admin(node, false, delay);
    }

    /// Schedule `node` to power back up after `delay` (no-op unless it is
    /// crashed at that time); its [`Node::on_restart`] hook runs.
    pub fn schedule_restart(&mut self, node: NodeId, delay: TimeDelta) {
        self.push_node_admin(node, true, delay);
    }

    /// Schedule link `link` to go administratively down (`up: false`) or
    /// back up (`up: true`) after `delay`. While down, transmissions in
    /// either direction are dropped (counted in `LinkStats::admin_drops`);
    /// packets already in flight still arrive.
    ///
    /// Internally this is two per-direction events, each dispatched by the
    /// partition owning that direction's transmitting node.
    pub fn schedule_link_admin(&mut self, link: LinkId, up: bool, delay: TimeDelta) {
        for end in 0..2usize {
            let dir = link.raw() as usize * 2 + end;
            let s = self.link_admin_seq[dir];
            self.link_admin_seq[dir] = s.checked_add(1).expect("link admin seq overflow");
            let t = tie::pack(tie::CLASS_LINK_ADMIN, dir as u32, s);
            let p = self.topo.dir_owner(dir) as usize;
            let at = self.parts[p].core.now + delay;
            self.parts[p].core.queue.push_keyed(
                at,
                t,
                EventKind::LinkAdmin {
                    link: link.raw(),
                    end: end as u8,
                    up,
                },
            );
        }
    }

    /// Whether `node` is currently crashed.
    pub fn node_crashed(&self, node: NodeId) -> bool {
        self.parts[self.owner(node)].core.crashed[node.raw() as usize]
    }

    /// Deliveries and timers discarded while `node` was crashed.
    pub fn crash_drops(&self, node: NodeId) -> u64 {
        self.parts[self.owner(node)].core.crash_drops[node.raw() as usize]
    }

    /// Scheduler counters (queue depth high-water, wheel cascades, dead
    /// timer reaps, slab reuse) for the run so far, merged over partitions.
    pub fn sched_stats(&self) -> SchedStats {
        let mut s = SchedStats::default();
        for p in &self.parts {
            s.merge(&p.core.queue.stats());
        }
        s
    }

    /// Parallel-engine counters (zeros/defaults on the single-threaded
    /// backends, where `partitions == 1`).
    pub fn par_stats(&self) -> ParStats {
        let mut s = ParStats {
            partitions: self.parts.len(),
            ..ParStats::default()
        };
        for p in &self.parts {
            s.cross_messages += p.core.par.cross_messages;
            s.min_dispatch_margin_picos =
                s.min_dispatch_margin_picos.min(p.core.par.min_margin);
            s.iterations += p.core.par.iterations;
            s.channel_stalls += p.core.par.channel_stalls;
        }
        s
    }

    /// Run until the event queue is empty or `deadline` is reached (whichever
    /// comes first). Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        if self.parts.len() > 1 {
            return self.run_parallel(deadline, false);
        }
        let part = &mut self.parts[0];
        let mut n = 0;
        // Fused pop-with-deadline: one queue traversal per event instead of
        // a peek/pop pair.
        while let Some(ev) = part.core.queue.pop_if_at_or_before(deadline) {
            part.dispatch(ev);
            n += 1;
        }
        // Advance the clock to the deadline even if the queue went quiet.
        if part.core.now < deadline {
            part.core.now = deadline;
        }
        n
    }

    /// Run until the event queue is empty. Returns events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        if self.parts.len() > 1 {
            return self.run_parallel(Time::from_picos(u64::MAX), true);
        }
        let part = &mut self.parts[0];
        let mut n = 0;
        while let Some(ev) = part.core.queue.pop() {
            part.dispatch(ev);
            n += 1;
        }
        // Quiescence is the natural point to hand a storm's peak slab
        // capacity back to the allocator.
        part.core.queue.release_excess();
        n
    }

    /// One parallel run segment: spawn a scoped worker per partition, let
    /// them advance under the conservative protocol, then re-align clocks.
    fn run_parallel(&mut self, deadline: Time, quiesce: bool) -> u64 {
        let before: u64 = self.parts.iter().map(|p| p.core.events_processed).sum();
        let shared = self.sync.as_ref().expect("parallel run without sync").clone();
        let peeks: Vec<u64> = self
            .parts
            .iter_mut()
            .map(|p| p.core.queue.peek_time().map_or(u64::MAX, |t| t.picos()))
            .collect();
        shared.begin(&peeks);
        std::thread::scope(|s| {
            for part in &mut self.parts {
                let shared = &*shared;
                s.spawn(move || part.run_loop(deadline, quiesce, shared));
            }
        });
        if quiesce {
            // Partitions stop at the time of their own last event; the
            // simulation's quiescence instant is the latest of those.
            let max_now = self
                .parts
                .iter()
                .map(|p| p.core.now)
                .max()
                .expect("at least one partition");
            for p in &mut self.parts {
                p.core.now = max_now;
                p.core.queue.release_excess();
            }
        } else {
            for p in &mut self.parts {
                if p.core.now < deadline {
                    p.core.now = deadline;
                }
            }
        }
        let after: u64 = self.parts.iter().map(|p| p.core.events_processed).sum();
        after - before
    }

    /// Process exactly one event. Panics if the queue is empty, or on the
    /// parallel backend (single-stepping has no meaning across partitions).
    pub fn step(&mut self) {
        assert!(
            self.parts.len() == 1,
            "step() requires a single-partition backend"
        );
        let part = &mut self.parts[0];
        let ev = part.core.queue.pop().expect("step on empty event queue");
        part.dispatch(ev);
    }

    /// Borrow a node, downcast to its concrete type. Panics on a wrong type
    /// or unknown id. Used by scenario drivers and tests to read node state
    /// between runs — the simulated equivalent of the paper's control plane
    /// reading data-plane registers.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        let node = self.parts[self.owner(id)].nodes[id.raw() as usize]
            .as_deref()
            .expect("node detached");
        let any: &dyn std::any::Any = node;
        any.downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`Simulator::node`].
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let p = self.owner(id);
        let node = self.parts[p].nodes[id.raw() as usize]
            .as_deref_mut()
            .expect("node detached");
        let name = node.name().to_owned();
        let any: &mut dyn std::any::Any = node;
        any.downcast_mut::<T>().unwrap_or_else(|| {
            panic!(
                "node {id:?} ({name}) is not a {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Per-direction stats for a link. `end` 0 is the `a` side passed to
    /// [`SimBuilder::connect`], and the stats describe traffic *transmitted
    /// by* that end.
    pub fn link_stats(&self, link: LinkId, end: usize) -> LinkStats {
        let dir = link.raw() as usize * 2 + end;
        self.parts[self.topo.dir_owner(dir) as usize].core.dirs[dir].stats
    }

    /// Total packets delivered across every link in both directions — the
    /// per-hop packet count the perf harness divides by wall-clock time.
    pub fn packets_delivered(&self) -> u64 {
        (0..self.topo.dirs())
            .map(|d| {
                self.parts[self.topo.dir_owner(d) as usize].core.dirs[d]
                    .stats
                    .delivered_packets
            })
            .sum()
    }

    /// The recorded trace (empty unless [`SimBuilder::keep_trace`] was set):
    /// every partition's per-direction event lists, merged into one
    /// time-sorted view. The sort is stable over (direction, per-direction
    /// order), so the result is deterministic.
    pub fn trace(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for d in 0..self.topo.dirs() {
            let owner = self.topo.dir_owner(d) as usize;
            out.extend_from_slice(self.parts[owner].core.trace.dir_events(d));
        }
        out.sort_by_key(|e| e.at);
        out
    }

    /// A rolling digest over every delivered packet: time, endpoints, length
    /// and content digest, folded per link direction and then combined in
    /// canonical direction order. Identical topology + seed gives an
    /// identical digest on every scheduler backend, parallel included.
    pub fn trace_digest(&self) -> u64 {
        TraceSink::combined_digest(self.topo.dirs(), |d| {
            &self.parts[self.topo.dir_owner(d) as usize].core.trace
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{with_sched_backend, SchedBackend};
    use crate::link::FaultSpec;
    use std::collections::VecDeque;

    /// Test node: echoes every packet back out the port it arrived on,
    /// queueing if necessary, and counts arrivals.
    struct Echo {
        name: String,
        rx: u64,
        pending: VecDeque<(PortId, Packet)>,
    }

    impl Echo {
        fn new(name: &str) -> Self {
            Echo {
                name: name.into(),
                rx: 0,
                pending: VecDeque::new(),
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
            self.rx += 1;
            if ctx.tx_busy(port) {
                self.pending.push_back((port, packet));
            } else {
                ctx.start_tx(port, packet);
            }
        }

        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
            if let Some((port, pkt)) = self.pending.pop_front() {
                ctx.start_tx(port, pkt);
            }
        }

        fn name(&self) -> &str {
            &self.name
        }
    }

    /// Test node: sends `count` packets of `size` bytes as fast as the line
    /// allows, then counts what comes back.
    struct Blaster {
        name: String,
        to_send: u64,
        size: usize,
        rx: u64,
        last_rx_at: Time,
    }

    impl Node for Blaster {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, _packet: Packet) {
            self.rx += 1;
            self.last_rx_at = ctx.now();
        }

        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            if self.to_send > 0 && !ctx.tx_busy(PortId(0)) {
                self.to_send -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(self.size));
            }
        }

        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
            if self.to_send > 0 {
                self.to_send -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(self.size));
            }
        }

        fn name(&self) -> &str {
            &self.name
        }
    }

    fn blaster(count: u64, size: usize) -> Box<Blaster> {
        Box::new(Blaster {
            name: "blaster".into(),
            to_send: count,
            size,
            rx: 0,
            last_rx_at: Time::ZERO,
        })
    }

    fn two_node_sim(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut b = SimBuilder::new(seed);
        let blaster = b.add_node(blaster(10, 1500));
        let echo = b.add_node(Box::new(Echo::new("echo")));
        b.connect(blaster, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
        (sim, blaster, echo)
    }

    #[test]
    fn packets_flow_and_echo_back() {
        let (mut sim, blaster, echo) = two_node_sim(1);
        sim.run_to_quiescence();
        assert_eq!(sim.node::<Echo>(echo).rx, 10);
        assert_eq!(sim.node::<Blaster>(blaster).rx, 10);
    }

    #[test]
    fn timing_matches_rate_and_propagation() {
        // One 1500B packet at 40G: 300ns ser + 300ns prop = 600ns one way;
        // echo serializes another 300ns + 300ns prop → 1.2us round trip.
        let mut b = SimBuilder::new(7);
        let bl = b.add_node(blaster(1, 1500));
        let echo = b.add_node(Box::new(Echo::new("e")));
        b.connect(bl, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(bl, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        assert_eq!(sim.node::<Blaster>(bl).last_rx_at, Time::from_nanos(1200));
    }

    #[test]
    fn throughput_is_line_rate_bounded() {
        // 10 x 1500B back-to-back at 40G: last bit leaves at 10*300ns; the
        // echo node receives the final packet 300ns later.
        let (mut sim, _, echo) = two_node_sim(3);
        sim.run_to_quiescence();
        let _ = echo;
        assert_eq!(sim.now(), Time::from_nanos(10 * 300 + 300 + 300 + 300));
    }

    #[test]
    fn determinism_same_seed_same_digest() {
        let (mut a, _, _) = two_node_sim(42);
        let (mut b, _, _) = two_node_sim(42);
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_ne!(a.trace_digest(), 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _, _) = two_node_sim(1);
        sim.run_until(Time::from_nanos(700));
        assert_eq!(sim.now(), Time::from_nanos(700));
        let before = sim.events_processed();
        sim.run_to_quiescence();
        assert!(sim.events_processed() > before);
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let run = |seed| {
            let mut b = SimBuilder::new(seed);
            let bl = b.add_node(blaster(1000, 200));
            let echo = b.add_node(Box::new(Echo::new("e")));
            let mut spec = LinkSpec::testbed_40g();
            spec.faults = FaultSpec {
                drop_prob: 0.2,
                corrupt_prob: 0.0,
                ..FaultSpec::NONE
            };
            let l = b.connect(bl, PortId(0), echo, PortId(0), spec);
            let mut sim = b.build();
            sim.schedule_timer(bl, TimeDelta::ZERO, 0);
            sim.run_to_quiescence();
            (
                sim.node::<Echo>(echo).rx,
                sim.link_stats(l, 0).dropped_packets,
            )
        };
        let (rx1, drop1) = run(5);
        let (rx2, drop2) = run(5);
        assert_eq!((rx1, drop1), (rx2, drop2));
        assert!(
            drop1 > 100 && drop1 < 300,
            "drop count {drop1} implausible for p=0.2"
        );
        assert_eq!(rx1 + drop1, 1000);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let mut b = SimBuilder::new(9);
        let bl = b.add_node(blaster(1, 100));
        struct Capture {
            got: Option<Packet>,
        }
        impl Node for Capture {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
                self.got = Some(packet);
            }
            fn name(&self) -> &str {
                "capture"
            }
        }
        let cap = b.add_node(Box::new(Capture { got: None }));
        let mut spec = LinkSpec::testbed_40g();
        spec.faults = FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            ..FaultSpec::NONE
        };
        b.connect(bl, PortId(0), cap, PortId(0), spec);
        let mut sim = b.build();
        sim.schedule_timer(bl, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        let got = sim.node_mut::<Capture>(cap).got.take().expect("delivered");
        let ones: u32 = got.as_slice().iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }

    #[test]
    fn corrupting_empty_packets_does_not_panic() {
        struct EmptySender {
            sent: bool,
        }
        impl Node for EmptySender {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
                if !self.sent {
                    self.sent = true;
                    ctx.start_tx(PortId(0), Packet::zeroed(0));
                }
            }
            fn name(&self) -> &str {
                "empty"
            }
        }
        let mut b = SimBuilder::new(2);
        let s = b.add_node(Box::new(EmptySender { sent: false }));
        let e = b.add_node(Box::new(Echo::new("echo")));
        let mut spec = LinkSpec::testbed_40g();
        spec.faults = FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            ..FaultSpec::NONE
        };
        b.connect(s, PortId(0), e, PortId(0), spec);
        let mut sim = b.build();
        sim.schedule_timer(s, TimeDelta::ZERO, 0);
        sim.run_to_quiescence(); // must not panic
        assert_eq!(sim.node::<Echo>(e).rx, 1);
    }

    #[test]
    fn link_stats_account_bytes() {
        let (mut sim, _, _) = two_node_sim(1);
        sim.run_to_quiescence();
        let s = sim.link_stats(LinkId(0), 0);
        assert_eq!(s.tx_packets, 10);
        assert_eq!(s.tx_bytes, 15_000);
        assert_eq!(s.delivered_bytes, 15_000);
        assert_eq!(s.dropped_packets, 0);
    }

    #[test]
    #[should_panic(expected = "port busy")]
    fn double_tx_panics() {
        struct Bad;
        impl Node for Bad {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
                ctx.start_tx(PortId(0), Packet::zeroed(64));
                ctx.start_tx(PortId(0), Packet::zeroed(64));
            }
            fn name(&self) -> &str {
                "bad"
            }
        }
        let mut b = SimBuilder::new(0);
        let bad = b.add_node(Box::new(Bad));
        let peer = b.add_node(Box::new(Echo::new("peer")));
        b.connect(bad, PortId(0), peer, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(bad, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn duplicate_port_connection_panics() {
        let mut b = SimBuilder::new(0);
        let x = b.add_node(Box::new(Echo::new("x")));
        let y = b.add_node(Box::new(Echo::new("y")));
        let z = b.add_node(Box::new(Echo::new("z")));
        b.connect(x, PortId(0), y, PortId(0), LinkSpec::testbed_40g());
        b.connect(x, PortId(0), z, PortId(0), LinkSpec::testbed_40g());
    }

    #[test]
    fn trace_recording_captures_deliveries() {
        let mut b = SimBuilder::new(1);
        let bl = b.add_node(blaster(3, 64));
        let echo = b.add_node(Box::new(Echo::new("e")));
        b.connect(bl, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        b.keep_trace(true);
        let mut sim = b.build();
        sim.schedule_timer(bl, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        // 3 deliveries each way.
        assert_eq!(sim.trace().len(), 6);
        assert!(sim.trace().windows(2).all(|w| w[0].at <= w[1].at));
    }

    // ------------------------------------------------------------------
    // Parallel backend

    /// Build + run the two-node scenario under `backend`, returning the
    /// observable fingerprint: digest, events, packets, echo rx count.
    fn two_node_fingerprint(backend: SchedBackend, seed: u64) -> (u64, u64, u64, u64) {
        with_sched_backend(backend, || {
            let (mut sim, _, echo) = two_node_sim(seed);
            sim.run_to_quiescence();
            (
                sim.trace_digest(),
                sim.events_processed(),
                sim.packets_delivered(),
                sim.node::<Echo>(echo).rx,
            )
        })
    }

    #[test]
    fn parallel_two_nodes_matches_wheel() {
        for seed in [1, 7, 42] {
            let wheel = two_node_fingerprint(SchedBackend::Wheel, seed);
            let par = two_node_fingerprint(SchedBackend::Parallel(2), seed);
            assert_eq!(wheel, par, "seed {seed}");
        }
    }

    #[test]
    fn parallel_run_until_segments_match_wheel() {
        let run = |backend| {
            with_sched_backend(backend, || {
                let (mut sim, _, _) = two_node_sim(11);
                sim.run_until(Time::from_nanos(700));
                let mid = (sim.now(), sim.events_processed());
                sim.run_to_quiescence();
                (mid, sim.trace_digest(), sim.events_processed())
            })
        };
        assert_eq!(run(SchedBackend::Wheel), run(SchedBackend::Parallel(2)));
    }

    #[test]
    fn parallel_fault_injection_matches_wheel() {
        let run = |backend| {
            with_sched_backend(backend, || {
                let mut b = SimBuilder::new(5);
                let bl = b.add_node(blaster(500, 200));
                let echo = b.add_node(Box::new(Echo::new("e")));
                let mut spec = LinkSpec::testbed_40g();
                spec.faults = FaultSpec {
                    drop_prob: 0.1,
                    corrupt_prob: 0.05,
                    duplicate_prob: 0.05,
                    reorder_prob: 0.05,
                    reorder_delay: TimeDelta::from_nanos(900),
                };
                let l = b.connect(bl, PortId(0), echo, PortId(0), spec);
                let mut sim = b.build();
                sim.schedule_timer(bl, TimeDelta::ZERO, 0);
                sim.run_to_quiescence();
                (sim.trace_digest(), sim.link_stats(l, 0), sim.link_stats(l, 1))
            })
        };
        assert_eq!(run(SchedBackend::Wheel), run(SchedBackend::Parallel(2)));
    }

    #[test]
    fn parallel_crash_restart_matches_wheel() {
        let run = |backend| {
            with_sched_backend(backend, || {
                let (mut sim, _, echo) = two_node_sim(13);
                // Crash the echo (partition 1 under Parallel(2)) mid-run,
                // restart it, and let the survivors drain.
                sim.schedule_crash(echo, TimeDelta::from_nanos(800));
                sim.schedule_restart(echo, TimeDelta::from_nanos(2000));
                sim.run_to_quiescence();
                (
                    sim.trace_digest(),
                    sim.crash_drops(echo),
                    sim.node::<Echo>(echo).rx,
                )
            })
        };
        let wheel = run(SchedBackend::Wheel);
        assert_eq!(wheel, run(SchedBackend::Parallel(2)));
        assert!(wheel.1 > 0, "crash window should blackhole something");
    }

    #[test]
    fn parallel_link_admin_matches_wheel() {
        let run = |backend| {
            with_sched_backend(backend, || {
                let (mut sim, _, _) = two_node_sim(17);
                sim.schedule_link_admin(LinkId(0), false, TimeDelta::from_nanos(500));
                sim.schedule_link_admin(LinkId(0), true, TimeDelta::from_nanos(1500));
                sim.run_to_quiescence();
                (
                    sim.trace_digest(),
                    sim.link_stats(LinkId(0), 0).admin_drops
                        + sim.link_stats(LinkId(0), 1).admin_drops,
                )
            })
        };
        assert_eq!(run(SchedBackend::Wheel), run(SchedBackend::Parallel(2)));
    }

    #[test]
    fn parallel_stats_are_sane() {
        with_sched_backend(SchedBackend::Parallel(2), || {
            let (mut sim, _, _) = two_node_sim(23);
            sim.run_to_quiescence();
            let s = sim.par_stats();
            assert_eq!(s.partitions, 2);
            assert!(s.cross_messages > 0, "every delivery crosses partitions");
            assert!(
                s.min_dispatch_margin_picos >= 1,
                "dispatch at/past the bound violates conservative safety"
            );
            assert!(s.iterations > 0);
        });
    }

    #[test]
    fn four_partitions_all_cross_pairs_match_wheel() {
        // 4 blaster-echo pairs laid out so that under Parallel(4) every
        // pair spans two partitions: blasters are nodes 0..4, echoes 4..8.
        let run = |backend| {
            with_sched_backend(backend, || {
                let mut b = SimBuilder::new(31);
                let blasters: Vec<NodeId> =
                    (0..4).map(|i| b.add_node(blaster(20 + i, 512))).collect();
                let echoes: Vec<NodeId> = (0..4)
                    .map(|i| b.add_node(Box::new(Echo::new(&format!("e{i}")))))
                    .collect();
                for (bl, e) in blasters.iter().zip(&echoes) {
                    b.connect(*bl, PortId(0), *e, PortId(0), LinkSpec::testbed_40g());
                }
                let mut sim = b.build();
                for bl in &blasters {
                    sim.schedule_timer(*bl, TimeDelta::ZERO, 0);
                }
                sim.run_to_quiescence();
                let rx: Vec<u64> = echoes.iter().map(|e| sim.node::<Echo>(*e).rx).collect();
                (sim.trace_digest(), sim.events_processed(), rx)
            })
        };
        let wheel = run(SchedBackend::Wheel);
        assert_eq!(wheel, run(SchedBackend::Parallel(4)));
        assert_eq!(wheel.2, vec![20, 21, 22, 23]);
    }

    #[test]
    #[should_panic(expected = "crosses partitions but has zero propagation")]
    fn zero_propagation_cross_link_panics_under_parallel() {
        with_sched_backend(SchedBackend::Parallel(2), || {
            let mut b = SimBuilder::new(0);
            let x = b.add_node(Box::new(Echo::new("x")));
            let y = b.add_node(Box::new(Echo::new("y")));
            let spec = LinkSpec::new(Rate::from_gbps(40), TimeDelta::ZERO);
            b.connect(x, PortId(0), y, PortId(0), spec);
            let _ = b.build();
        });
    }
}
