//! The simulation engine: topology registry plus the event loop.

use crate::event::{EventKind, EventQueue, SchedStats, TimerHandle, NO_LANE};
use crate::link::{Endpoint, LinkSpec, LinkStats};
use crate::node::{Node, NodeCtx};
use crate::trace::{TraceEvent, TraceSink};
use extmem_types::{LinkId, NodeId, PortId, Rate, Time, TimeDelta};
use extmem_wire::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Bytes of Ethernet + IPv4 + UDP headers. Injected corruption lands past
/// this prefix (see the comment at the injection site in [`EngineCore::start_tx`]).
const CLASSIFICATION_PREFIX: usize = 14 + 20 + 8;

/// One attached link instance.
struct Link {
    spec: LinkSpec,
    ends: [Endpoint; 2],
    /// Per-direction stats, indexed by transmitting end (0 or 1).
    stats: [LinkStats; 2],
    /// Administrative state: while `false`, transmissions are dropped on
    /// the floor (the port still cycles so senders don't wedge).
    admin_up: bool,
}

/// Connection state of one `(node, port)` pair, stored in a dense table
/// indexed by the (small, contiguous) node and port ids. Every packet event
/// does several port lookups, so these are plain array indexing rather than
/// hashing.
#[derive(Clone, Copy)]
struct PortSlot {
    /// Index into [`EngineCore::links`].
    link: u32,
    /// Which end of that link this port is (0 or 1).
    end: u8,
    /// Whether a transmit is in flight on this port.
    busy: bool,
}

/// Engine internals shared with [`NodeCtx`]. Split from [`Simulator`] so a
/// node callback can borrow the core mutably while the node itself is
/// temporarily detached from the node table.
pub struct EngineCore {
    pub(crate) now: Time,
    pub(crate) rng: StdRng,
    queue: EventQueue,
    links: Vec<Link>,
    /// `ports[node][port]` → connection state, `None` for unconnected ports.
    ports: Vec<Vec<Option<PortSlot>>>,
    /// Per-node crash flag: while set, the node's deliveries and timers are
    /// blackholed (counted in `crash_drops`) instead of dispatched.
    crashed: Vec<bool>,
    /// Deliveries + timers discarded per node while it was crashed.
    crash_drops: Vec<u64>,
    trace: TraceSink,
    events_processed: u64,
}

impl EngineCore {
    fn slot(&self, node: NodeId, port: PortId) -> Option<&PortSlot> {
        self.ports
            .get(node.raw() as usize)?
            .get(port.raw() as usize)?
            .as_ref()
    }

    fn slot_mut(&mut self, node: NodeId, port: PortId) -> Option<&mut PortSlot> {
        self.ports
            .get_mut(node.raw() as usize)?
            .get_mut(port.raw() as usize)?
            .as_mut()
    }

    pub(crate) fn set_tx_idle(&mut self, node: NodeId, port: PortId) {
        self.slot_mut(node, port).expect("tx state").busy = false;
    }

    pub(crate) fn start_tx(&mut self, node: NodeId, port: PortId, packet: Packet) {
        let slot = self
            .slot_mut(node, port)
            .unwrap_or_else(|| panic!("start_tx on unconnected port {node:?}/{port:?}"));
        assert!(!slot.busy, "start_tx while port busy: {node:?}/{port:?}");
        slot.busy = true;
        let (lid, end) = (slot.link as usize, slot.end as usize);

        let link = &mut self.links[lid];
        let ser = link.spec.rate.time_to_send(packet.len());
        let arrival = self.now + ser + link.spec.propagation;
        let dst = link.ends[1 - end];

        let stats = &mut link.stats[end];
        stats.tx_packets += 1;
        stats.tx_bytes += packet.len() as u64;

        if !link.admin_up {
            // Administratively down: the bits leave the transceiver and die.
            // TxDone still fires so the sender's port cycles normally.
            stats.admin_drops += 1;
            self.queue.push_lane(
                self.now + ser,
                lane_of(lid, end, LANE_TX_DONE),
                EventKind::TxDone { node, port },
            );
            return;
        }

        // Fault injection is decided at transmit time so the RNG draw order
        // is a deterministic function of the event order.
        let faults = link.spec.faults;
        let mut deliver = Some(packet);
        let mut duplicate = false;
        let base_arrival = arrival;
        let mut arrival = arrival;
        if faults.is_active() {
            if faults.reorder_prob > 0.0 && self.rng.gen_bool(faults.reorder_prob) {
                // Held back: packets serialized after this one overtake it.
                arrival += faults.reorder_delay;
                link.stats[end].reordered_packets += 1;
            }
            if faults.drop_prob > 0.0 && self.rng.gen_bool(faults.drop_prob) {
                link.stats[end].dropped_packets += 1;
                deliver = None;
            } else if faults.corrupt_prob > 0.0 && self.rng.gen_bool(faults.corrupt_prob) {
                let mut pkt = deliver.take().unwrap();
                if !pkt.is_empty() {
                    // Our frames carry no Ethernet FCS: on a real wire a
                    // flipped classification bit (MAC, ethertype, IP/UDP
                    // headers) dies at the receiving MAC before any layer
                    // sees it. The injector therefore models the post-FCS
                    // corruption domain — the in-network bit flips that
                    // only an end-to-end check (ICRC) catches — and flips
                    // bits past the L2/L3/L4 classification prefix.
                    let lo = if pkt.len() > CLASSIFICATION_PREFIX {
                        CLASSIFICATION_PREFIX
                    } else {
                        0
                    };
                    let idx = self.rng.gen_range(lo..pkt.len());
                    pkt.as_mut_slice()[idx] ^= 1 << self.rng.gen_range(0..8u8);
                    link.stats[end].corrupted_packets += 1;
                }
                deliver = Some(pkt);
            }
            // A replayed frame: the same packet arrives twice, back to back.
            duplicate = deliver.is_some()
                && faults.duplicate_prob > 0.0
                && self.rng.gen_bool(faults.duplicate_prob);
        }

        if let Some(pkt) = deliver {
            let l = &mut self.links[lid];
            l.stats[end].delivered_packets += 1;
            l.stats[end].delivered_bytes += pkt.len() as u64;
            // `pkt.digest()` is cached across hops, and the parts-based
            // record avoids building a TraceEvent when recording is off.
            self.trace.record_delivery(
                arrival,
                Endpoint { node, port },
                dst,
                pkt.len(),
                pkt.digest(),
            );
            // Deliveries on one link direction arrive in transmit order
            // (each serialization finishes before the next begins), so they
            // ride the FIFO lane — unless a reorder fault broke the order.
            let lane = if arrival == base_arrival {
                lane_of(lid, end, LANE_DELIVER)
            } else {
                NO_LANE
            };
            let copy = duplicate.then(|| pkt.clone());
            let kind = EventKind::Deliver {
                node: dst.node,
                port: dst.port,
                packet: pkt,
            };
            if lane == NO_LANE {
                self.queue.push(arrival, kind);
            } else {
                self.queue.push_lane(arrival, lane, kind);
            }
            if let Some(copy) = copy {
                // A replayed frame: the copy lands at the same instant but
                // strictly after the original in the total order (later
                // seq). It bypasses the FIFO lane: lanes require
                // non-decreasing push times and the next real delivery may
                // be earlier-keyed.
                let l = &mut self.links[lid];
                l.stats[end].duplicated_packets += 1;
                l.stats[end].delivered_packets += 1;
                l.stats[end].delivered_bytes += copy.len() as u64;
                self.trace.record_delivery(
                    arrival,
                    Endpoint { node, port },
                    dst,
                    copy.len(),
                    copy.digest(),
                );
                self.queue.push(
                    arrival,
                    EventKind::Deliver {
                        node: dst.node,
                        port: dst.port,
                        packet: copy,
                    },
                );
            }
        }
        // TxDone per port is likewise monotone: one transmit in flight.
        self.queue.push_lane(
            self.now + ser,
            lane_of(lid, end, LANE_TX_DONE),
            EventKind::TxDone { node, port },
        );
    }

    pub(crate) fn tx_busy(&self, node: NodeId, port: PortId) -> bool {
        self.slot(node, port).is_some_and(|s| s.busy)
    }

    pub(crate) fn port_link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.slot(node, port).map(|s| LinkId(s.link))
    }

    pub(crate) fn link_rate(&self, node: NodeId, port: PortId) -> Rate {
        let slot = self
            .slot(node, port)
            .unwrap_or_else(|| panic!("link_rate on unconnected port {node:?}/{port:?}"));
        self.links[slot.link as usize].spec.rate
    }

    pub(crate) fn schedule_timer(&mut self, node: NodeId, delay: TimeDelta, token: u64) {
        self.queue
            .push(self.now + delay, EventKind::Timer { node, token });
    }

    pub(crate) fn schedule_timer_cancellable(
        &mut self,
        node: NodeId,
        delay: TimeDelta,
        token: u64,
    ) -> TimerHandle {
        self.queue.push_timer(self.now + delay, node, token)
    }

    pub(crate) fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.queue.cancel(handle)
    }
}

/// FIFO lane ids: two per link direction.
const LANE_DELIVER: u32 = 0;
const LANE_TX_DONE: u32 = 1;

fn lane_of(link: usize, end: usize, kind: u32) -> u32 {
    (link as u32) * 4 + (end as u32) * 2 + kind
}

/// Builder for a [`Simulator`]: register nodes, connect ports, pick a seed.
pub struct SimBuilder {
    nodes: Vec<Box<dyn Node>>,
    links: Vec<Link>,
    ports: HashMap<(NodeId, PortId), (usize, usize)>,
    seed: u64,
    trace: TraceSink,
}

impl SimBuilder {
    /// Start building a simulation with the given RNG seed.
    pub fn new(seed: u64) -> SimBuilder {
        SimBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
            ports: HashMap::new(),
            seed,
            trace: TraceSink::disabled(),
        }
    }

    /// Register a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with `spec`.
    ///
    /// # Panics
    ///
    /// Panics on unknown node ids, self-loops, or ports that are already
    /// connected.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        spec: LinkSpec,
    ) -> LinkId {
        spec.faults.validate();
        assert!((a.raw() as usize) < self.nodes.len(), "unknown node {a:?}");
        assert!((b.raw() as usize) < self.nodes.len(), "unknown node {b:?}");
        assert!(a != b, "self-loop links are not supported");
        let lid = self.links.len();
        for (end, ep) in [(0usize, (a, pa)), (1, (b, pb))] {
            let prev = self.ports.insert(ep, (lid, end));
            assert!(prev.is_none(), "port {:?}/{:?} connected twice", ep.0, ep.1);
        }
        self.links.push(Link {
            spec,
            ends: [
                Endpoint { node: a, port: pa },
                Endpoint { node: b, port: pb },
            ],
            stats: [LinkStats::default(), LinkStats::default()],
            admin_up: true,
        });
        LinkId(lid as u32)
    }

    /// Record every delivered packet (time, endpoints, length, digest) into
    /// an in-memory trace, retrievable via [`Simulator::trace`]. Costs memory
    /// proportional to traffic; off by default. The rolling digest used by
    /// determinism tests is always maintained.
    pub fn keep_trace(&mut self, keep: bool) -> &mut Self {
        self.trace = if keep {
            TraceSink::recording()
        } else {
            TraceSink::disabled()
        };
        self
    }

    /// Finish building.
    pub fn build(self) -> Simulator {
        // Flatten the builder's port map into the dense per-node tables the
        // event loop indexes directly.
        let mut ports: Vec<Vec<Option<PortSlot>>> = vec![Vec::new(); self.nodes.len()];
        for (&(node, port), &(lid, end)) in &self.ports {
            let row = &mut ports[node.raw() as usize];
            let idx = port.raw() as usize;
            if row.len() <= idx {
                row.resize(idx + 1, None);
            }
            row[idx] = Some(PortSlot {
                link: lid as u32,
                end: end as u8,
                busy: false,
            });
        }
        let mut queue = EventQueue::new();
        queue.ensure_lanes(self.links.len() * 4);
        let n = self.nodes.len();
        Simulator {
            nodes: self.nodes.into_iter().map(Some).collect(),
            core: EngineCore {
                now: Time::ZERO,
                rng: StdRng::seed_from_u64(self.seed),
                queue,
                links: self.links,
                ports,
                crashed: vec![false; n],
                crash_drops: vec![0; n],
                trace: self.trace,
                events_processed: 0,
            },
        }
    }
}

/// A runnable simulation.
pub struct Simulator {
    /// `Option` so a node can be detached during its own callback.
    nodes: Vec<Option<Box<dyn Node>>>,
    core: EngineCore,
}

impl Simulator {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Schedule a timer for `node` as if it had called [`NodeCtx::schedule`].
    /// Used by scenario drivers to kick off generators.
    pub fn schedule_timer(&mut self, node: NodeId, delay: TimeDelta, token: u64) {
        self.core.schedule_timer(node, delay, token);
    }

    /// Schedule `node` to crash after `delay`: its [`Node::on_crash`] hook
    /// runs, then every delivery and timer addressed to it is discarded
    /// until a matching [`Simulator::schedule_restart`] fires.
    pub fn schedule_crash(&mut self, node: NodeId, delay: TimeDelta) {
        let at = self.core.now + delay;
        self.core
            .queue
            .push(at, EventKind::NodeAdmin { node, up: false });
    }

    /// Schedule `node` to power back up after `delay` (no-op unless it is
    /// crashed at that time); its [`Node::on_restart`] hook runs.
    pub fn schedule_restart(&mut self, node: NodeId, delay: TimeDelta) {
        let at = self.core.now + delay;
        self.core
            .queue
            .push(at, EventKind::NodeAdmin { node, up: true });
    }

    /// Schedule link `link` to go administratively down (`up: false`) or
    /// back up (`up: true`) after `delay`. While down, transmissions in
    /// either direction are dropped (counted in `LinkStats::admin_drops`);
    /// packets already in flight still arrive.
    pub fn schedule_link_admin(&mut self, link: LinkId, up: bool, delay: TimeDelta) {
        let at = self.core.now + delay;
        self.core
            .queue
            .push(at, EventKind::LinkAdmin { link: link.raw(), up });
    }

    /// Whether `node` is currently crashed.
    pub fn node_crashed(&self, node: NodeId) -> bool {
        self.core.crashed[node.raw() as usize]
    }

    /// Deliveries and timers discarded while `node` was crashed.
    pub fn crash_drops(&self, node: NodeId) -> u64 {
        self.core.crash_drops[node.raw() as usize]
    }

    /// Scheduler counters (queue depth high-water, wheel cascades, dead
    /// timer reaps, slab reuse) for the run so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.core.queue.stats()
    }

    /// Run until the event queue is empty or `deadline` is reached (whichever
    /// comes first). Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut n = 0;
        // Fused pop-with-deadline: one queue traversal per event instead of
        // a peek/pop pair.
        while let Some(ev) = self.core.queue.pop_if_at_or_before(deadline) {
            self.dispatch(ev);
            n += 1;
        }
        // Advance the clock to the deadline even if the queue went quiet.
        if self.core.now < deadline {
            self.core.now = deadline;
        }
        n
    }

    /// Run until the event queue is empty. Returns events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut n = 0;
        while !self.core.queue.is_empty() {
            self.step();
            n += 1;
        }
        // Quiescence is the natural point to hand a storm's peak slab
        // capacity back to the allocator.
        self.core.queue.release_excess();
        n
    }

    /// Process exactly one event. Panics if the queue is empty.
    pub fn step(&mut self) {
        let ev = self.core.queue.pop().expect("step on empty event queue");
        self.dispatch(ev);
    }

    fn dispatch(&mut self, ev: crate::event::Scheduled) {
        debug_assert!(ev.at >= self.core.now, "event queue went backwards");
        self.core.now = ev.at;
        self.core.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { node, port, packet } => {
                if self.core.crashed[node.raw() as usize] {
                    // Bits arriving at a dark node fall on the floor.
                    self.core.crash_drops[node.raw() as usize] += 1;
                    drop(packet);
                    return;
                }
                self.with_node(node, |n, ctx| n.on_packet(ctx, port, packet));
            }
            EventKind::TxDone { node, port } => {
                // The wire frees up regardless; the callback is what a
                // crashed node doesn't get.
                self.core.set_tx_idle(node, port);
                if self.core.crashed[node.raw() as usize] {
                    return;
                }
                self.with_node(node, |n, ctx| n.on_tx_done(ctx, port));
            }
            EventKind::Timer { node, token } => {
                if self.core.crashed[node.raw() as usize] {
                    // Timers armed before the crash die with it.
                    self.core.crash_drops[node.raw() as usize] += 1;
                    return;
                }
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::NodeAdmin { node, up } => {
                let idx = node.raw() as usize;
                if up {
                    if self.core.crashed[idx] {
                        self.core.crashed[idx] = false;
                        self.with_node(node, |n, ctx| n.on_restart(ctx));
                    }
                } else if !self.core.crashed[idx] {
                    self.core.crashed[idx] = true;
                    self.with_node(node, |n, ctx| n.on_crash(ctx));
                }
            }
            EventKind::LinkAdmin { link, up } => {
                self.core.links[link as usize].admin_up = up;
            }
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let slot = self
            .nodes
            .get_mut(id.raw() as usize)
            .unwrap_or_else(|| panic!("event for unknown node {id:?}"));
        let mut node = slot
            .take()
            .expect("node re-entered during its own callback");
        let mut ctx = NodeCtx {
            core: &mut self.core,
            node: id,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.raw() as usize] = Some(node);
    }

    /// Borrow a node, downcast to its concrete type. Panics on a wrong type
    /// or unknown id. Used by scenario drivers and tests to read node state
    /// between runs — the simulated equivalent of the paper's control plane
    /// reading data-plane registers.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        let node = self.nodes[id.raw() as usize]
            .as_deref()
            .expect("node detached");
        let any: &dyn std::any::Any = node;
        any.downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`Simulator::node`].
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node = self.nodes[id.raw() as usize]
            .as_deref_mut()
            .expect("node detached");
        let name = node.name().to_owned();
        let any: &mut dyn std::any::Any = node;
        any.downcast_mut::<T>().unwrap_or_else(|| {
            panic!(
                "node {id:?} ({name}) is not a {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Per-direction stats for a link. `end` 0 is the `a` side passed to
    /// [`SimBuilder::connect`], and the stats describe traffic *transmitted
    /// by* that end.
    pub fn link_stats(&self, link: LinkId, end: usize) -> LinkStats {
        self.core.links[link.raw() as usize].stats[end]
    }

    /// Total packets delivered across every link in both directions — the
    /// per-hop packet count the perf harness divides by wall-clock time.
    pub fn packets_delivered(&self) -> u64 {
        self.core
            .links
            .iter()
            .map(|l| l.stats[0].delivered_packets + l.stats[1].delivered_packets)
            .sum()
    }

    /// The recorded trace (empty unless [`SimBuilder::keep_trace`] was set).
    pub fn trace(&self) -> &[TraceEvent] {
        self.core.trace.events()
    }

    /// A rolling digest over every delivered packet: time, endpoints, length
    /// and content digest. Two runs with the same topology and seed must
    /// produce the same digest.
    pub fn trace_digest(&self) -> u64 {
        self.core.trace.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::FaultSpec;
    use std::collections::VecDeque;

    /// Test node: echoes every packet back out the port it arrived on,
    /// queueing if necessary, and counts arrivals.
    struct Echo {
        name: String,
        rx: u64,
        pending: VecDeque<(PortId, Packet)>,
    }

    impl Echo {
        fn new(name: &str) -> Self {
            Echo {
                name: name.into(),
                rx: 0,
                pending: VecDeque::new(),
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
            self.rx += 1;
            if ctx.tx_busy(port) {
                self.pending.push_back((port, packet));
            } else {
                ctx.start_tx(port, packet);
            }
        }

        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
            if let Some((port, pkt)) = self.pending.pop_front() {
                ctx.start_tx(port, pkt);
            }
        }

        fn name(&self) -> &str {
            &self.name
        }
    }

    /// Test node: sends `count` packets of `size` bytes as fast as the line
    /// allows, then counts what comes back.
    struct Blaster {
        name: String,
        to_send: u64,
        size: usize,
        rx: u64,
        last_rx_at: Time,
    }

    impl Node for Blaster {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, _packet: Packet) {
            self.rx += 1;
            self.last_rx_at = ctx.now();
        }

        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            if self.to_send > 0 && !ctx.tx_busy(PortId(0)) {
                self.to_send -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(self.size));
            }
        }

        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
            if self.to_send > 0 {
                self.to_send -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(self.size));
            }
        }

        fn name(&self) -> &str {
            &self.name
        }
    }

    fn two_node_sim(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut b = SimBuilder::new(seed);
        let blaster = b.add_node(Box::new(Blaster {
            name: "blaster".into(),
            to_send: 10,
            size: 1500,
            rx: 0,
            last_rx_at: Time::ZERO,
        }));
        let echo = b.add_node(Box::new(Echo::new("echo")));
        b.connect(blaster, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
        (sim, blaster, echo)
    }

    #[test]
    fn packets_flow_and_echo_back() {
        let (mut sim, blaster, echo) = two_node_sim(1);
        sim.run_to_quiescence();
        assert_eq!(sim.node::<Echo>(echo).rx, 10);
        assert_eq!(sim.node::<Blaster>(blaster).rx, 10);
    }

    #[test]
    fn timing_matches_rate_and_propagation() {
        // One 1500B packet at 40G: 300ns ser + 300ns prop = 600ns one way;
        // echo serializes another 300ns + 300ns prop → 1.2us round trip.
        let mut b = SimBuilder::new(7);
        let blaster = b.add_node(Box::new(Blaster {
            name: "b".into(),
            to_send: 1,
            size: 1500,
            rx: 0,
            last_rx_at: Time::ZERO,
        }));
        let echo = b.add_node(Box::new(Echo::new("e")));
        b.connect(blaster, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        assert_eq!(
            sim.node::<Blaster>(blaster).last_rx_at,
            Time::from_nanos(1200)
        );
    }

    #[test]
    fn throughput_is_line_rate_bounded() {
        // 10 x 1500B back-to-back at 40G: last bit leaves at 10*300ns; the
        // echo node receives the final packet 300ns later.
        let (mut sim, _, echo) = two_node_sim(3);
        sim.run_to_quiescence();
        let _ = echo;
        assert_eq!(sim.now(), Time::from_nanos(10 * 300 + 300 + 300 + 300));
    }

    #[test]
    fn determinism_same_seed_same_digest() {
        let (mut a, _, _) = two_node_sim(42);
        let (mut b, _, _) = two_node_sim(42);
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_ne!(a.trace_digest(), 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _, _) = two_node_sim(1);
        sim.run_until(Time::from_nanos(700));
        assert_eq!(sim.now(), Time::from_nanos(700));
        let before = sim.events_processed();
        sim.run_to_quiescence();
        assert!(sim.events_processed() > before);
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let run = |seed| {
            let mut b = SimBuilder::new(seed);
            let blaster = b.add_node(Box::new(Blaster {
                name: "b".into(),
                to_send: 1000,
                size: 200,
                rx: 0,
                last_rx_at: Time::ZERO,
            }));
            let echo = b.add_node(Box::new(Echo::new("e")));
            let mut spec = LinkSpec::testbed_40g();
            spec.faults = FaultSpec {
                drop_prob: 0.2,
                corrupt_prob: 0.0,
                ..FaultSpec::NONE
            };
            let l = b.connect(blaster, PortId(0), echo, PortId(0), spec);
            let mut sim = b.build();
            sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
            sim.run_to_quiescence();
            (
                sim.node::<Echo>(echo).rx,
                sim.link_stats(l, 0).dropped_packets,
            )
        };
        let (rx1, drop1) = run(5);
        let (rx2, drop2) = run(5);
        assert_eq!((rx1, drop1), (rx2, drop2));
        assert!(
            drop1 > 100 && drop1 < 300,
            "drop count {drop1} implausible for p=0.2"
        );
        assert_eq!(rx1 + drop1, 1000);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let mut b = SimBuilder::new(9);
        let blaster = b.add_node(Box::new(Blaster {
            name: "b".into(),
            to_send: 1,
            size: 100,
            rx: 0,
            last_rx_at: Time::ZERO,
        }));
        struct Capture {
            got: Option<Packet>,
        }
        impl Node for Capture {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
                self.got = Some(packet);
            }
            fn name(&self) -> &str {
                "capture"
            }
        }
        let cap = b.add_node(Box::new(Capture { got: None }));
        let mut spec = LinkSpec::testbed_40g();
        spec.faults = FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            ..FaultSpec::NONE
        };
        b.connect(blaster, PortId(0), cap, PortId(0), spec);
        let mut sim = b.build();
        sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        let got = sim.node_mut::<Capture>(cap).got.take().expect("delivered");
        let ones: u32 = got.as_slice().iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }

    #[test]
    fn corrupting_empty_packets_does_not_panic() {
        struct EmptySender {
            sent: bool,
        }
        impl Node for EmptySender {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
                if !self.sent {
                    self.sent = true;
                    ctx.start_tx(PortId(0), Packet::zeroed(0));
                }
            }
            fn name(&self) -> &str {
                "empty"
            }
        }
        let mut b = SimBuilder::new(2);
        let s = b.add_node(Box::new(EmptySender { sent: false }));
        let e = b.add_node(Box::new(Echo::new("echo")));
        let mut spec = LinkSpec::testbed_40g();
        spec.faults = FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            ..FaultSpec::NONE
        };
        b.connect(s, PortId(0), e, PortId(0), spec);
        let mut sim = b.build();
        sim.schedule_timer(s, TimeDelta::ZERO, 0);
        sim.run_to_quiescence(); // must not panic
        assert_eq!(sim.node::<Echo>(e).rx, 1);
    }

    #[test]
    fn link_stats_account_bytes() {
        let (mut sim, _, _) = two_node_sim(1);
        sim.run_to_quiescence();
        let s = sim.link_stats(LinkId(0), 0);
        assert_eq!(s.tx_packets, 10);
        assert_eq!(s.tx_bytes, 15_000);
        assert_eq!(s.delivered_bytes, 15_000);
        assert_eq!(s.dropped_packets, 0);
    }

    #[test]
    #[should_panic(expected = "port busy")]
    fn double_tx_panics() {
        struct Bad;
        impl Node for Bad {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
                ctx.start_tx(PortId(0), Packet::zeroed(64));
                ctx.start_tx(PortId(0), Packet::zeroed(64));
            }
            fn name(&self) -> &str {
                "bad"
            }
        }
        let mut b = SimBuilder::new(0);
        let bad = b.add_node(Box::new(Bad));
        let peer = b.add_node(Box::new(Echo::new("peer")));
        b.connect(bad, PortId(0), peer, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(bad, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn duplicate_port_connection_panics() {
        let mut b = SimBuilder::new(0);
        let x = b.add_node(Box::new(Echo::new("x")));
        let y = b.add_node(Box::new(Echo::new("y")));
        let z = b.add_node(Box::new(Echo::new("z")));
        b.connect(x, PortId(0), y, PortId(0), LinkSpec::testbed_40g());
        b.connect(x, PortId(0), z, PortId(0), LinkSpec::testbed_40g());
    }

    #[test]
    fn trace_recording_captures_deliveries() {
        let mut b = SimBuilder::new(1);
        let blaster = b.add_node(Box::new(Blaster {
            name: "b".into(),
            to_send: 3,
            size: 64,
            rx: 0,
            last_rx_at: Time::ZERO,
        }));
        let echo = b.add_node(Box::new(Echo::new("e")));
        b.connect(blaster, PortId(0), echo, PortId(0), LinkSpec::testbed_40g());
        b.keep_trace(true);
        let mut sim = b.build();
        sim.schedule_timer(blaster, TimeDelta::ZERO, 0);
        sim.run_to_quiescence();
        // 3 deliveries each way.
        assert_eq!(sim.trace().len(), 6);
        assert!(sim.trace().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
