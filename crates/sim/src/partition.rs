//! Support types for the conservative-synchronization parallel engine.
//!
//! The node graph is split into `k` contiguous **partitions**. Each
//! partition owns its nodes, its own timing wheel, and the transmit side of
//! every link direction whose transmitting node it owns. Partitions advance
//! concurrently under the classic conservative rule: link propagation delay
//! is **lookahead**. Partition `p` continuously publishes, per outbound
//! neighbor `q`, a lower bound on the timestamp of any delivery it may
//! still send (`earliest own work + min propagation p→q`), and `q` only
//! dispatches events strictly below the minimum of its inbound bounds.
//! Cross-partition deliveries travel through bounded SPSC channels;
//! everything else (timers, tx-completions, crash and link admin) stays
//! partition-local.
//!
//! Deadlock freedom: bounds are re-published every loop iteration whether
//! or not progress was made (the null-message role), all cross-partition
//! links are required to have strictly positive propagation, and a sender
//! blocked on a full channel drains its own inboxes while it waits.
//!
//! Termination uses distributed double-scan detection: per-partition
//! `finished` flags, monotone `progress` counters bumped on every dispatch
//! or drain, and per-channel sent/received counters. The coordinator
//! (partition 0) declares the run over only after two consecutive scans
//! observe every partition finished, every channel balanced, and no
//! progress in between.

use crate::link::{Endpoint, LinkSpec};
use extmem_types::{NodeId, PortId, Time};
use extmem_wire::Packet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// Static description of one link, shared read-only by every partition.
pub(crate) struct LinkInfo {
    pub spec: LinkSpec,
    pub ends: [Endpoint; 2],
}

/// Static connection state of one `(node, port)` pair.
#[derive(Clone, Copy)]
pub(crate) struct PortSlotStatic {
    /// Index into [`Topo::links`].
    pub link: u32,
    /// Which end of that link this port is (0 or 1).
    pub end: u8,
}

/// The immutable topology, shared by all partitions behind an `Arc`.
pub(crate) struct Topo {
    pub links: Vec<LinkInfo>,
    /// `ports[node][port]` → connection state, `None` for unconnected ports.
    pub ports: Vec<Vec<Option<PortSlotStatic>>>,
    /// Owning partition of each node.
    pub node_part: Vec<u32>,
}

impl Topo {
    /// Link directions (`link * 2 + transmitting end`).
    pub fn dirs(&self) -> usize {
        self.links.len() * 2
    }

    /// Partition owning the transmit side of direction `dir`.
    pub fn dir_owner(&self, dir: usize) -> u32 {
        let ep = self.links[dir / 2].ends[dir & 1];
        self.node_part[ep.node.raw() as usize]
    }

    pub fn slot(&self, node: NodeId, port: PortId) -> Option<PortSlotStatic> {
        *self
            .ports
            .get(node.raw() as usize)?
            .get(port.raw() as usize)?
    }
}

/// Contiguous balanced partition assignment: node `i` of `n` goes to
/// partition `i * k / n`. Contiguity keeps the common builder pattern —
/// switch registered right before its locally-attached servers — mostly
/// intra-partition.
pub(crate) fn part_of(node: usize, nodes: usize, parts: usize) -> u32 {
    debug_assert!(node < nodes && parts >= 1);
    (node * parts / nodes) as u32
}

/// Derive an independent RNG stream seed from the simulation seed
/// (splitmix64-style finalizer over a tag/index-disambiguated input).
/// A pure function, so every backend derives identical streams.
pub(crate) fn stream_seed(seed: u64, tag: u64, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG stream tag for per-link-direction fault injection.
pub(crate) const STREAM_FAULTS: u64 = 1;
/// RNG stream tag for per-node [`crate::NodeCtx::rng`] draws.
pub(crate) const STREAM_NODE: u64 = 2;

/// A delivery crossing a partition boundary. The tie key and lane were
/// fixed by the transmitting side, so the receiver just inserts it.
pub(crate) struct CrossMsg {
    pub at: Time,
    pub tie: u64,
    /// FIFO lane id, or [`crate::event::NO_LANE`] for reordered/duplicate
    /// deliveries.
    pub lane: u32,
    pub node: NodeId,
    pub port: PortId,
    pub packet: Packet,
}

/// Sending half of one `p → q` channel, held by partition `p`.
pub(crate) struct Outbox {
    pub tx: SyncSender<CrossMsg>,
    /// Messages enqueued (bumped *before* the enqueue, so `sent > recv`
    /// whenever a message is in flight).
    pub sent: Arc<AtomicU64>,
}

/// Receiving half of one `p → q` channel, held by partition `q`.
pub(crate) struct Inbox {
    pub rx: Receiver<CrossMsg>,
    /// Messages fully absorbed into the local queue (bumped *after* the
    /// insert).
    pub recv: Arc<AtomicU64>,
}

/// One channel's counters, retained for the coordinator's balance scan.
pub(crate) struct ChannelMeta {
    pub sent: Arc<AtomicU64>,
    pub recv: Arc<AtomicU64>,
}

/// State shared by all worker threads of one parallel run.
pub(crate) struct SyncShared {
    pub k: usize,
    /// `bounds[p * k + q]`: picosecond promise from `p` to `q` — every
    /// delivery `p` has yet to send to `q` fires at or after this. Only
    /// ever raised (`fetch_max`) while workers run.
    pub bounds: Vec<AtomicU64>,
    /// `lookahead[p * k + q]`: min propagation over links `p → q`
    /// (`u64::MAX` when no such link).
    pub lookahead: Vec<u64>,
    /// Partitions with a channel into `q` / out of `p`.
    pub inbound: Vec<Vec<u32>>,
    pub outbound: Vec<Vec<u32>>,
    /// Per-partition "nothing left to do at my current bounds" flags.
    pub finished: Vec<AtomicBool>,
    /// Per-partition monotone activity counters (any dispatch or drain).
    pub progress: Vec<AtomicU64>,
    /// Set once by the coordinator; every worker exits on seeing it.
    pub done: AtomicBool,
    pub channels: Vec<ChannelMeta>,
}

impl SyncShared {
    pub fn new(k: usize, lookahead: Vec<u64>) -> SyncShared {
        assert_eq!(lookahead.len(), k * k);
        let mut inbound = vec![Vec::new(); k];
        let mut outbound = vec![Vec::new(); k];
        for p in 0..k {
            for q in 0..k {
                if p != q && lookahead[p * k + q] != u64::MAX {
                    outbound[p].push(q as u32);
                    inbound[q].push(p as u32);
                }
            }
        }
        SyncShared {
            k,
            bounds: (0..k * k).map(|_| AtomicU64::new(0)).collect(),
            lookahead,
            inbound,
            outbound,
            finished: (0..k).map(|_| AtomicBool::new(false)).collect(),
            progress: (0..k).map(|_| AtomicU64::new(0)).collect(),
            done: AtomicBool::new(false),
            channels: Vec::new(),
        }
    }

    /// Prepare for a run: clear flags and seed the bound matrix from the
    /// partitions' current queue heads (`peeks[p]`, `u64::MAX` if empty).
    ///
    /// Naively seeding `bounds[p][q] = peek_p + la` over-promises: `p`'s
    /// earliest *send* can be triggered by a message it has not received
    /// yet (e.g. `p` idle until 1000 locally, but `q` dispatches at 10 and
    /// the reply bounces off `p` at 210). The true lower bound on when any
    /// causal chain can reach `p` is the min-plus relaxation
    /// `est(p) = min(peek_p, min over r of est(r) + la(r→p))`, a shortest-
    /// path fixpoint that Bellman–Ford reaches in `< k` sweeps because all
    /// lookaheads are strictly positive.
    pub fn begin(&self, peeks: &[u64]) {
        self.done.store(false, SeqCst);
        for f in &self.finished {
            f.store(false, SeqCst);
        }
        let k = self.k;
        let mut est: Vec<u64> = peeks.to_vec();
        for _ in 0..k {
            let mut changed = false;
            for p in 0..k {
                for &q in &self.outbound[p] {
                    let q = q as usize;
                    let cand = est[p].saturating_add(self.lookahead[p * k + q]);
                    if cand < est[q] {
                        est[q] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (p, &e) in est.iter().enumerate() {
            for &q in &self.outbound[p] {
                let q = q as usize;
                let b = e.saturating_add(self.lookahead[p * k + q]);
                self.bounds[p * k + q].store(b, SeqCst);
            }
        }
    }

    /// The dispatch bound of partition `me`: min over inbound promises,
    /// `u64::MAX` with no inbound channels. `me` may dispatch strictly
    /// below this.
    pub fn safe_bound(&self, me: usize) -> u64 {
        let mut safe = u64::MAX;
        for &p in &self.inbound[me] {
            safe = safe.min(self.bounds[p as usize * self.k + me].load(SeqCst));
        }
        safe
    }

    /// Raise the promise `me → q` to at least `bound` picoseconds.
    pub fn publish(&self, me: usize, q: usize, bound: u64) {
        self.bounds[me * self.k + q].fetch_max(bound, SeqCst);
    }

    /// Coordinator-only: double-scan termination check. Returns `true`
    /// (and sets [`SyncShared::done`]) only if two consecutive scans both
    /// see every partition finished and every channel balanced, with
    /// identical `(progress, sent)` totals — i.e. no activity slipped
    /// between the scans. A partition drains by first lowering its
    /// `finished` flag, then bumping `recv`, so a scan that observes a
    /// balanced channel and a later scan that re-reads the flag cannot
    /// both miss in-flight work.
    pub fn try_terminate(&self) -> bool {
        let scan = || -> Option<(u64, u64)> {
            if !self.finished.iter().all(|f| f.load(SeqCst)) {
                return None;
            }
            let mut sent_total = 0u64;
            for c in &self.channels {
                let s = c.sent.load(SeqCst);
                if s != c.recv.load(SeqCst) {
                    return None;
                }
                sent_total += s;
            }
            let progress = self.progress.iter().map(|p| p.load(SeqCst)).sum();
            Some((progress, sent_total))
        };
        match (scan(), scan()) {
            (Some(a), Some(b)) if a == b => {
                self.done.store(true, SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// Trips the shared `done` flag if its worker unwinds, so the other
/// workers (and the joining `thread::scope`) are not left spinning on a
/// run that can never finish.
pub(crate) struct PanicFuse<'a>(pub &'a SyncShared);

impl Drop for PanicFuse<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.done.store(true, SeqCst);
        }
    }
}

/// Counters from the parallel engine, exposed via
/// [`crate::Simulator::par_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParStats {
    /// Partitions (= worker threads) the topology was split into.
    pub partitions: usize,
    /// Deliveries that crossed a partition boundary.
    pub cross_messages: u64,
    /// Minimum over all dispatches of `safe_bound - event_time` in
    /// picoseconds (`u64::MAX` if nothing was ever dispatched under a
    /// finite bound). Strictly positive iff no partition ever dispatched
    /// at or past its incoming-link bound.
    pub min_dispatch_margin_picos: u64,
    /// Worker loop iterations summed over partitions and runs.
    pub iterations: u64,
    /// Times a sender found a cross-partition channel full and had to
    /// spin (draining its own inboxes while waiting).
    pub channel_stalls: u64,
}

impl Default for ParStats {
    fn default() -> Self {
        ParStats {
            partitions: 1,
            cross_messages: 0,
            min_dispatch_margin_picos: u64::MAX,
            iterations: 0,
            channel_stalls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_of_is_contiguous_and_balanced() {
        let n = 10;
        let k = 4;
        let assign: Vec<u32> = (0..n).map(|i| part_of(i, n, k)).collect();
        assert!(assign.windows(2).all(|w| w[0] <= w[1]), "contiguous");
        assert_eq!(assign[0], 0);
        assert_eq!(assign[n - 1], (k - 1) as u32);
        for p in 0..k as u32 {
            let size = assign.iter().filter(|&&a| a == p).count();
            assert!((2..=3).contains(&size), "partition {p} holds {size}");
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(42, STREAM_FAULTS, 0);
        assert_eq!(a, stream_seed(42, STREAM_FAULTS, 0), "pure function");
        assert_ne!(a, stream_seed(42, STREAM_FAULTS, 1));
        assert_ne!(a, stream_seed(42, STREAM_NODE, 0));
        assert_ne!(a, stream_seed(43, STREAM_FAULTS, 0));
    }

    #[test]
    fn begin_relaxes_bounds_through_cycles() {
        // Two partitions, 100 ps lookahead both ways. p0 idle until 1000,
        // p1 fires at 10: p0's promise must reflect that p1's event can
        // bounce a reply off p0 at 10 + 100 (+100 back), not 1000 + 100.
        let mut la = vec![u64::MAX; 4];
        la[1] = 100; // 0 → 1
        la[2] = 100; // 1 → 0
        let s = SyncShared::new(2, la);
        s.begin(&[1000, 10]);
        assert_eq!(s.bounds[1].load(SeqCst), 110 + 100, "0→1: est(0)=110");
        assert_eq!(s.bounds[2].load(SeqCst), 10 + 100, "1→0: est(1)=10");
        assert_eq!(s.safe_bound(0), 110);
        assert_eq!(s.safe_bound(1), 210);
    }

    #[test]
    fn bounds_only_ratchet_up() {
        let mut la = vec![u64::MAX; 4];
        la[1] = 5;
        la[2] = 5;
        let s = SyncShared::new(2, la);
        s.begin(&[0, 0]);
        s.publish(0, 1, 50);
        s.publish(0, 1, 20); // lower publish must not win
        assert_eq!(s.safe_bound(1), 50);
    }

    #[test]
    fn termination_needs_all_finished_and_balanced() {
        let s = SyncShared::new(2, vec![u64::MAX; 4]);
        s.begin(&[u64::MAX, u64::MAX]);
        assert!(!s.try_terminate(), "nobody finished yet");
        s.finished[0].store(true, SeqCst);
        assert!(!s.try_terminate(), "partition 1 still running");
        s.finished[1].store(true, SeqCst);
        assert!(s.try_terminate());
        assert!(s.done.load(SeqCst));
    }
}
