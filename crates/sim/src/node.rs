//! The [`Node`] trait and the context handed to node callbacks.

use crate::engine::EngineCore;
use crate::event::TimerHandle;
use extmem_types::{NodeId, PortId, Rate, Time, TimeDelta};
use extmem_wire::Packet;
use rand::rngs::StdRng;
use std::any::Any;

/// Anything attached to the simulated topology.
///
/// A node owns its ports' queues: the engine serializes at most one packet
/// per `(node, port)` at a time and calls [`Node::on_tx_done`] when the wire
/// is free again. This "one in flight, you manage the queue" contract is what
/// lets the switch model expose true egress-queue depth to the paper's
/// packet-buffer primitive.
///
/// Implementations must be deterministic: any randomness must come from
/// [`NodeCtx::rng`].
///
/// `Send` because the parallel scheduler backend moves each partition's
/// nodes onto a worker thread; a node is still only ever called from one
/// thread at a time.
pub trait Node: Any + Send {
    /// A packet finished arriving on `port`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet);

    /// A timer scheduled via [`NodeCtx::schedule`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// The packet previously passed to [`NodeCtx::start_tx`] on `port` has
    /// fully serialized; the port can transmit again.
    fn on_tx_done(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId) {}

    /// The node lost power (scheduled via `Simulator::schedule_crash`).
    /// Implementations drop volatile state here — queues, in-flight work,
    /// DRAM contents. While crashed the engine discards the node's
    /// deliveries and timers, so a non-restarted node is simply dark.
    fn on_crash(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The node powered back up (scheduled via
    /// `Simulator::schedule_restart`). State is whatever `on_crash` left;
    /// implementations re-arm whatever a cold boot would.
    fn on_restart(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Human-readable name for traces and panics.
    fn name(&self) -> &str;
}

/// The engine-backed context available during node callbacks.
///
/// All interaction with the outside world — sending, timers, randomness —
/// goes through this handle, which keeps nodes testable and the simulation
/// deterministic.
pub struct NodeCtx<'a> {
    pub(crate) core: &'a mut EngineCore,
    pub(crate) node: NodeId,
}

impl NodeCtx<'_> {
    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Begin serializing `packet` out of `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is not connected or is already transmitting —
    /// both are programming errors in the calling node; use [`crate::TxQueue`]
    /// to queue behind an in-flight packet.
    pub fn start_tx(&mut self, port: PortId, packet: Packet) {
        self.core.start_tx(self.node, port, packet);
    }

    /// Whether `port` is currently serializing a packet.
    pub fn tx_busy(&self, port: PortId) -> bool {
        self.core.tx_busy(self.node, port)
    }

    /// Whether `port` is connected to a link.
    pub fn port_connected(&self, port: PortId) -> bool {
        self.core.port_link(self.node, port).is_some()
    }

    /// The line rate of the link attached to `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is not connected.
    pub fn link_rate(&self, port: PortId) -> Rate {
        self.core.link_rate(self.node, port)
    }

    /// Schedule [`Node::on_timer`] to fire after `delay` with `token`.
    pub fn schedule(&mut self, delay: TimeDelta, token: u64) {
        self.core.schedule_timer(self.node, delay, token);
    }

    /// Like [`NodeCtx::schedule`], but returns a handle the node can pass
    /// to [`NodeCtx::cancel_timer`] if the timer becomes moot.
    pub fn schedule_cancellable(&mut self, delay: TimeDelta, token: u64) -> TimerHandle {
        self.core.schedule_timer_cancellable(self.node, delay, token)
    }

    /// Cancel a timer scheduled with [`NodeCtx::schedule_cancellable`].
    /// Returns `false` if it already fired or was already cancelled.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.core.cancel_timer(handle)
    }

    /// This node's RNG stream. Per-node (derived from the simulation seed),
    /// so a node's draws depend only on its own callback sequence — the
    /// same on every scheduler backend, parallel included.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.node_rng[self.node.raw() as usize]
    }
}
