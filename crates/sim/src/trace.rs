//! Packet traces and the determinism digest.

use crate::link::Endpoint;
use extmem_types::Time;
use extmem_wire::packet::fnv1a;

/// One delivered packet, as seen by the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery time at the receiver.
    pub at: Time,
    /// Transmitting endpoint.
    pub from: Endpoint,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// Packet length in bytes.
    pub len: usize,
    /// Content digest (FNV-1a over the delivered bytes).
    pub digest: u64,
}

/// Collects trace events and maintains a rolling digest.
///
/// The digest is always maintained (it is cheap); full event recording is
/// opt-in because it grows with traffic volume.
pub struct TraceSink {
    record: bool,
    events: Vec<TraceEvent>,
    digest: u64,
}

impl TraceSink {
    /// A sink that only maintains the rolling digest.
    pub fn disabled() -> TraceSink {
        TraceSink {
            record: false,
            events: Vec::new(),
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// A sink that also records every event.
    pub fn recording() -> TraceSink {
        TraceSink {
            record: true,
            ..TraceSink::disabled()
        }
    }

    /// Fold one delivery into the rolling digest from its scalar parts.
    /// This is the hot path (it runs on every delivered packet): it stays
    /// allocation-free — the previous digest and the fields are serialized
    /// into one stack buffer — and when recording is disabled no
    /// [`TraceEvent`] is ever materialized.
    pub fn record_delivery(
        &mut self,
        at: Time,
        from: Endpoint,
        to: Endpoint,
        len: usize,
        digest: u64,
    ) {
        let mut buf = [0u8; 44];
        buf[0..8].copy_from_slice(&self.digest.to_le_bytes());
        buf[8..16].copy_from_slice(&at.picos().to_le_bytes());
        buf[16..20].copy_from_slice(&from.node.raw().to_le_bytes());
        buf[20..22].copy_from_slice(&from.port.raw().to_le_bytes());
        buf[22..26].copy_from_slice(&to.node.raw().to_le_bytes());
        buf[26..28].copy_from_slice(&to.port.raw().to_le_bytes());
        buf[28..36].copy_from_slice(&(len as u64).to_le_bytes());
        buf[36..44].copy_from_slice(&digest.to_le_bytes());
        self.digest = fnv1a(&buf);
        if self.record {
            self.events.push(TraceEvent {
                at,
                from,
                to,
                len,
                digest,
            });
        }
    }

    /// Fold `ev` into the digest (and record it if enabled). Equivalent to
    /// [`TraceSink::record_delivery`] with `ev`'s fields; kept for callers
    /// that already hold a constructed event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.record_delivery(ev.at, ev.from, ev.to, ev.len, ev.digest);
    }

    /// Recorded events (empty when recording is disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The rolling digest over all events so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem_types::{NodeId, PortId};

    fn ev(t: u64, d: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_picos(t),
            from: Endpoint {
                node: NodeId(0),
                port: PortId(0),
            },
            to: Endpoint {
                node: NodeId(1),
                port: PortId(0),
            },
            len: 64,
            digest: d,
        }
    }

    #[test]
    fn digest_depends_on_order_and_content() {
        let mut a = TraceSink::disabled();
        a.record(ev(1, 10));
        a.record(ev(2, 20));
        let mut b = TraceSink::disabled();
        b.record(ev(2, 20));
        b.record(ev(1, 10));
        assert_ne!(a.digest(), b.digest());

        let mut c = TraceSink::disabled();
        c.record(ev(1, 10));
        c.record(ev(2, 20));
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn recording_flag_controls_storage_not_digest() {
        let mut rec = TraceSink::recording();
        let mut dis = TraceSink::disabled();
        rec.record(ev(5, 7));
        dis.record(ev(5, 7));
        assert_eq!(rec.events().len(), 1);
        assert_eq!(dis.events().len(), 0);
        assert_eq!(rec.digest(), dis.digest());
    }
}
