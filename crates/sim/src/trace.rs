//! Packet traces and the determinism digest.
//!
//! The digest is kept **per link direction** rather than as one global
//! rolling hash. Deliveries on one direction are recorded at transmit time,
//! in transmit order — a sequence that is a function of the simulation
//! alone, not of how the event loop interleaves work — so each direction's
//! rolling fold is reproducible even when partitions dispatch concurrently.
//! [`TraceSink::combined_digest`] then folds the per-direction digests in a
//! fixed canonical order (ascending direction id), which is what makes the
//! wheel, heap, and parallel backends produce bit-identical fingerprints.

use crate::link::Endpoint;
use extmem_types::Time;
use extmem_wire::packet::fnv1a;

/// One delivered packet, as seen by the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery time at the receiver.
    pub at: Time,
    /// Transmitting endpoint.
    pub from: Endpoint,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// Packet length in bytes.
    pub len: usize,
    /// Content digest (FNV-1a over the delivered bytes).
    pub digest: u64,
}

/// FNV-1a offset basis; every per-direction fold starts here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One link direction's rolling state.
#[derive(Clone)]
struct DirTrace {
    digest: u64,
    count: u64,
    events: Vec<TraceEvent>,
}

impl DirTrace {
    const EMPTY: DirTrace = DirTrace {
        digest: FNV_OFFSET,
        count: 0,
        events: Vec::new(),
    };
}

/// Collects trace events and maintains per-direction rolling digests.
///
/// The digests are always maintained (they are cheap); full event recording
/// is opt-in because it grows with traffic volume. In a partitioned
/// simulation each partition owns the sink entries for the link directions
/// it transmits on; the engine folds them canonically at read time.
pub struct TraceSink {
    record: bool,
    dirs: Vec<DirTrace>,
}

impl TraceSink {
    /// A sink for `dirs` link directions that only maintains digests.
    pub fn disabled(dirs: usize) -> TraceSink {
        TraceSink {
            record: false,
            dirs: vec![DirTrace::EMPTY; dirs],
        }
    }

    /// A sink that also records every event.
    pub fn recording(dirs: usize) -> TraceSink {
        TraceSink {
            record: true,
            dirs: vec![DirTrace::EMPTY; dirs],
        }
    }

    /// Whether full event recording is on.
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Fold one delivery on direction `dir` into its rolling digest. This
    /// is the hot path (it runs on every delivered packet): it stays
    /// allocation-free — the previous digest and the fields are serialized
    /// into one stack buffer — and when recording is disabled no
    /// [`TraceEvent`] is ever materialized.
    pub fn record_delivery(
        &mut self,
        dir: usize,
        at: Time,
        from: Endpoint,
        to: Endpoint,
        len: usize,
        digest: u64,
    ) {
        let d = &mut self.dirs[dir];
        let mut buf = [0u8; 44];
        buf[0..8].copy_from_slice(&d.digest.to_le_bytes());
        buf[8..16].copy_from_slice(&at.picos().to_le_bytes());
        buf[16..20].copy_from_slice(&from.node.raw().to_le_bytes());
        buf[20..22].copy_from_slice(&from.port.raw().to_le_bytes());
        buf[22..26].copy_from_slice(&to.node.raw().to_le_bytes());
        buf[26..28].copy_from_slice(&to.port.raw().to_le_bytes());
        buf[28..36].copy_from_slice(&(len as u64).to_le_bytes());
        buf[36..44].copy_from_slice(&digest.to_le_bytes());
        d.digest = fnv1a(&buf);
        d.count += 1;
        if self.record {
            d.events.push(TraceEvent {
                at,
                from,
                to,
                len,
                digest,
            });
        }
    }

    /// Recorded events for one direction (empty unless recording).
    pub fn dir_events(&self, dir: usize) -> &[TraceEvent] {
        &self.dirs[dir].events
    }

    /// The rolling digest and delivery count of one direction.
    pub fn dir_digest(&self, dir: usize) -> (u64, u64) {
        (self.dirs[dir].digest, self.dirs[dir].count)
    }

    /// Fold per-direction digests in canonical (ascending direction id)
    /// order into one fingerprint. `pick` maps each direction id to the
    /// sink owning it — in a partitioned engine, the transmitting
    /// partition's sink; in a single-partition engine, always the same one.
    pub fn combined_digest<'a>(dirs: usize, pick: impl Fn(usize) -> &'a TraceSink) -> u64 {
        let mut acc = FNV_OFFSET;
        let mut buf = [0u8; 24];
        for dir in 0..dirs {
            let (digest, count) = pick(dir).dir_digest(dir);
            buf[0..8].copy_from_slice(&acc.to_le_bytes());
            buf[8..16].copy_from_slice(&digest.to_le_bytes());
            buf[16..24].copy_from_slice(&count.to_le_bytes());
            acc = fnv1a(&buf);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem_types::{NodeId, PortId};

    fn ev(t: u64, d: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_picos(t),
            from: Endpoint {
                node: NodeId(0),
                port: PortId(0),
            },
            to: Endpoint {
                node: NodeId(1),
                port: PortId(0),
            },
            len: 64,
            digest: d,
        }
    }

    fn record(sink: &mut TraceSink, dir: usize, e: TraceEvent) {
        sink.record_delivery(dir, e.at, e.from, e.to, e.len, e.digest);
    }

    #[test]
    fn digest_depends_on_order_and_content() {
        let mut a = TraceSink::disabled(2);
        record(&mut a, 0, ev(1, 10));
        record(&mut a, 0, ev(2, 20));
        let mut b = TraceSink::disabled(2);
        record(&mut b, 0, ev(2, 20));
        record(&mut b, 0, ev(1, 10));
        assert_ne!(a.dir_digest(0), b.dir_digest(0));

        let mut c = TraceSink::disabled(2);
        record(&mut c, 0, ev(1, 10));
        record(&mut c, 0, ev(2, 20));
        assert_eq!(a.dir_digest(0), c.dir_digest(0));
    }

    #[test]
    fn combined_digest_separates_directions() {
        // The same deliveries on different directions must not collide.
        let mut a = TraceSink::disabled(2);
        record(&mut a, 0, ev(1, 10));
        let mut b = TraceSink::disabled(2);
        record(&mut b, 1, ev(1, 10));
        let da = TraceSink::combined_digest(2, |_| &a);
        let db = TraceSink::combined_digest(2, |_| &b);
        assert_ne!(da, db);
    }

    #[test]
    fn combined_digest_is_fold_order_stable() {
        // Folding the same per-direction state from two sinks (as the
        // partitioned engine does) equals folding it from one.
        let mut whole = TraceSink::disabled(2);
        record(&mut whole, 0, ev(1, 10));
        record(&mut whole, 1, ev(2, 20));
        let mut p0 = TraceSink::disabled(2);
        record(&mut p0, 0, ev(1, 10));
        let mut p1 = TraceSink::disabled(2);
        record(&mut p1, 1, ev(2, 20));
        let split = TraceSink::combined_digest(2, |d| if d == 0 { &p0 } else { &p1 });
        assert_eq!(TraceSink::combined_digest(2, |_| &whole), split);
    }

    #[test]
    fn recording_flag_controls_storage_not_digest() {
        let mut rec = TraceSink::recording(1);
        let mut dis = TraceSink::disabled(1);
        record(&mut rec, 0, ev(5, 7));
        record(&mut dis, 0, ev(5, 7));
        assert_eq!(rec.dir_events(0).len(), 1);
        assert_eq!(dis.dir_events(0).len(), 0);
        assert_eq!(rec.dir_digest(0), dis.dir_digest(0));
    }
}
