//! The event queue.
//!
//! ## Layout
//!
//! The queue is split in two to keep the heap's working set small:
//!
//! * a binary heap of compact **keys** — `(Time, seq, slot)`, 24 bytes —
//!   which is all that sift-up/sift-down ever moves, and
//! * a **slab** of [`EventKind`] payloads (the enum holds a whole
//!   [`Packet`] in its `Deliver` variant), indexed by the key's `slot` and
//!   touched exactly twice per event: once on push, once on pop.
//!
//! A straight `BinaryHeap<Scheduled>` would drag every `EventKind` through
//! each comparison swap; with tens of thousands of in-flight deliveries
//! that is the scheduler's dominant memory traffic. The total order is
//! untouched: events fire in `(at, seq)` order with `seq` assigned at push
//! time, so determinism tests and trace digests see the identical schedule
//! (property-tested against a reference heap in
//! `tests/structure_proptests.rs`).

use extmem_types::{NodeId, PortId, Time};
use extmem_wire::Packet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at `node` on `port`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Receiving port (local to `node`).
        port: PortId,
        /// The packet, after any fault injection.
        packet: Packet,
    },
    /// `node` finishes serializing a packet out of `port`; the port is free
    /// again and the node's `on_tx_done` hook runs.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// A timer scheduled by `node` fires with its opaque `token`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque value chosen by the node at scheduling time.
        token: u64,
    },
}

/// An event plus its position in the total order, as returned by
/// [`EventQueue::pop`].
#[derive(Debug)]
pub struct Scheduled {
    /// Fire time.
    pub at: Time,
    /// Tie-breaker: events scheduled earlier fire earlier at equal times.
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// The 24-byte key the heap actually sorts: fire time, schedule sequence,
/// and the slab slot holding the [`EventKind`].
#[derive(Debug, Clone, Copy)]
struct Key {
    at: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first. `seq` is unique, so `slot` never participates.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A total-ordered future event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Key>,
    /// Slab of event payloads; `None` marks a free slot.
    slab: Vec<Option<EventKind>>,
    /// Free slots in the slab, reused LIFO so the hot slots stay cached.
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(kind);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Some(kind));
                s
            }
        };
        self.heap.push(Key { at, seq, slot });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        let key = self.heap.pop()?;
        let kind = self.slab[key.slot as usize]
            .take()
            .expect("heap key points at a live slot");
        self.free.push(key.slot);
        Some(Scheduled {
            at: key.at,
            seq: key.seq,
            kind,
        })
    }

    /// Fire time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|k| k.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), timer(0, 3));
        q.push(Time::from_nanos(10), timer(0, 1));
        q.push(Time::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        for expect in 0..100 {
            match q.pop().unwrap().kind {
                EventKind::Timer { token, .. } => assert_eq!(token, expect),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(7), timer(1, 0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(7)));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleaved push/pop churn must not grow the slab beyond the
        // high-water mark of concurrently pending events.
        for round in 0..50u64 {
            q.push(Time::from_nanos(round), timer(0, round));
            q.push(Time::from_nanos(round), timer(0, round + 1000));
            // Pops the earliest pending event (a leftover from an earlier
            // round once the backlog builds), freeing its slot for reuse.
            let s = q.pop().unwrap();
            assert!(s.at <= Time::from_nanos(round));
        }
        assert_eq!(q.len(), 50);
        assert!(
            q.slab.len() <= 51,
            "slab grew to {} for 51 peak events",
            q.slab.len()
        );
        let mut last = None;
        while let Some(s) = q.pop() {
            assert!(last.is_none_or(|l| (s.at, s.seq) > l));
            last = Some((s.at, s.seq));
        }
        assert_eq!(q.slab.iter().filter(|s| s.is_some()).count(), 0);
    }
}
