//! The event queue: a hierarchical timing wheel with a FIFO-lane fast path
//! and generation-tagged timer cancellation.
//!
//! ## Layout
//!
//! The queue keeps the PR 2 split between compact **keys** — `(Time, seq,
//! slot)`, 24 bytes — and a **slab** of [`EventKind`] payloads touched
//! exactly twice per event. What changed is the structure that orders the
//! keys:
//!
//! * a four-level **timing wheel** replaces the binary heap for future
//!   events. Granularity is 4.096 ns (picoseconds shifted right by 12); the
//!   inner level has 256 single-granule slots and each coarser level has 64
//!   slots spanning 256× the level below, for a ~275 ms horizon. Events past
//!   the horizon wait in a `BTreeMap` overflow ordered by `(at, seq)`.
//!   Inserts are O(1); time advances by jumping the cursor straight to the
//!   next occupied slot (found by bitmap scans) and cascading coarse slots
//!   downward as their windows open.
//! * a small **ready heap** holds only keys whose granule the cursor has
//!   reached; ties inside one granule still pop in exact `(at, seq)` order,
//!   so the total order is bit-identical to the old heap (property-tested
//!   against the retained heap oracle in `tests/structure_proptests.rs`,
//!   selectable via [`with_sched_backend`]).
//! * **FIFO lanes**: deliveries and tx-completions on one link direction are
//!   inherently time-ordered, so only each lane's head key lives in the
//!   wheel; the rest park in a per-lane `VecDeque` and are promoted on pop.
//!   This collapses the wheel population from O(in-flight packets) to
//!   O(links) in storm scenarios.
//! * **cancellable timers**: [`EventQueue::push_timer`] returns a
//!   generation-tagged [`TimerHandle`]. Cancellation marks the slab entry
//!   dead (the key stays where it is and is skipped lazily at pop), so
//!   cancel is O(1) and never disturbs the wheel. Generations come from a
//!   queue-wide monotonic counter, so a stale handle can never kill a
//!   reused slot.

use extmem_types::{NodeId, PortId, Time};
use extmem_wire::Packet;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at `node` on `port`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Receiving port (local to `node`).
        port: PortId,
        /// The packet, after any fault injection.
        packet: Packet,
    },
    /// `node` finishes serializing a packet out of `port`; the port is free
    /// again and the node's `on_tx_done` hook runs.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// A timer scheduled by `node` fires with its opaque `token`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque value chosen by the node at scheduling time.
        token: u64,
    },
    /// `node` crashes (`up: false`, volatile state lost, engine blackholes
    /// its events) or restarts (`up: true`).
    NodeAdmin {
        /// The affected node.
        node: NodeId,
        /// `false` = crash, `true` = restart.
        up: bool,
    },
    /// One direction of link `link` goes administratively down
    /// (`up: false`, transmissions are dropped on the floor) or back up
    /// (`up: true`). Per-direction so each event is dispatched by the
    /// partition owning that direction's transmitting node.
    LinkAdmin {
        /// Engine-internal link index (as returned by `SimBuilder::connect`).
        link: u32,
        /// The transmitting end this event governs (0 or 1).
        end: u8,
        /// `false` = down, `true` = up.
        up: bool,
    },
}

/// An event plus its position in the total order, as returned by
/// [`EventQueue::pop`].
#[derive(Debug)]
pub struct Scheduled {
    /// Fire time.
    pub at: Time,
    /// Tie-breaker at equal fire times. Events pushed through the public
    /// [`EventQueue::push`]/[`EventQueue::push_timer`] API get a plain
    /// monotone counter (earlier-scheduled fires earlier); the engine's
    /// internal pushes carry a *canonical* key packed from the event class
    /// and its source (see `tie`), which is what makes the parallel
    /// backend's total order identical to the single-threaded one.
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// Canonical tie-break keys.
///
/// The single-threaded engine used to break time ties by global push order,
/// which is an artifact of execution order and therefore unreproducible
/// across partitions dispatching concurrently. Instead, every engine-
/// originated event gets a key that depends only on *what* it is and *how
/// many* of its kind its source produced — quantities that are identical in
/// any backend:
///
/// ```text
///   bits 63..61  class   (1 = node admin, 2 = link admin, 3 = deliver,
///                         4 = tx-done, 5 = timer)
///   bits 60..32  source  (node id, or link direction id = link * 2 + end)
///   bits 31..0   per-source sequence number
/// ```
///
/// Class 0 is reserved for the public push API's plain counter (its values
/// never collide with packed keys: the counter would have to exceed 2^61).
/// At one fire time, order is: external pushes, node admin, link admin,
/// deliveries (by direction), tx-dones, timers (by node) — and within one
/// source, schedule order.
pub(crate) mod tie {
    /// Crash/restart events, keyed by node.
    pub const CLASS_NODE_ADMIN: u64 = 1;
    /// Per-direction link up/down events, keyed by direction.
    pub const CLASS_LINK_ADMIN: u64 = 2;
    /// Packet deliveries, keyed by transmitting link direction.
    pub const CLASS_DELIVER: u64 = 3;
    /// Transmit completions, keyed by transmitting link direction.
    pub const CLASS_TX_DONE: u64 = 4;
    /// Node timers, keyed by owning node.
    pub const CLASS_TIMER: u64 = 5;

    /// Pack a canonical key. Panics (debug) on out-of-range sources; the
    /// per-source sequence is 32-bit and checked by the callers' counters.
    pub fn pack(class: u64, src: u32, seq: u32) -> u64 {
        debug_assert!((1..=5).contains(&class), "bad tie class {class}");
        debug_assert!(src < (1 << 29), "tie source {src} out of range");
        (class << 61) | (u64::from(src) << 32) | u64::from(seq)
    }
}

/// A handle to a pending timer, returned by [`EventQueue::push_timer`].
///
/// The generation tag makes handles single-use: once the timer fires or is
/// cancelled, the handle goes stale and a later [`EventQueue::cancel`] with
/// it is a harmless no-op — even if the slab slot was reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u64,
}

/// Scheduler counters, exposed through `Simulator::sched_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// High-water mark of live pending events.
    pub peak_depth: u64,
    /// Coarse wheel slots cascaded down a level (0 on the heap backend).
    pub cascades: u64,
    /// Cancelled timers reaped at pop/peek instead of dispatching.
    pub dead_dispatches: u64,
    /// Events parked in a FIFO lane instead of entering the wheel.
    pub lane_parks: u64,
    /// Slab slots served from the free list.
    pub slab_hits: u64,
    /// Slab slots that had to grow the slab.
    pub slab_misses: u64,
    /// High-water mark of the free list (slab slots held but unused).
    pub free_high_water: u64,
    /// Slab slots returned to the allocator by `release_excess`.
    pub slots_released: u64,
}

impl SchedStats {
    /// Fold another run's counters into this one: high-water marks take
    /// the max, everything else sums (multi-run scenarios report one row).
    pub fn merge(&mut self, other: &SchedStats) {
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.free_high_water = self.free_high_water.max(other.free_high_water);
        self.cascades += other.cascades;
        self.dead_dispatches += other.dead_dispatches;
        self.lane_parks += other.lane_parks;
        self.slab_hits += other.slab_hits;
        self.slab_misses += other.slab_misses;
        self.slots_released += other.slots_released;
    }
}

/// Which core orders the keys. The wheel is the production backend; the
/// heap is retained as the property-test oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedBackend {
    /// Hierarchical timing wheel (default).
    Wheel,
    /// The PR 2 binary heap, kept as the equivalence oracle.
    Heap,
    /// Conservative-synchronization parallel engine: the node graph is
    /// split across `n` partitions, each with its own timing wheel, that
    /// advance concurrently under link-latency lookahead bounds. Trace
    /// digests are bit-identical to [`SchedBackend::Wheel`].
    Parallel(usize),
}

impl SchedBackend {
    /// Worker threads a simulation built under this backend will use.
    pub fn threads(self) -> usize {
        match self {
            SchedBackend::Parallel(n) => n.max(1),
            _ => 1,
        }
    }
}

thread_local! {
    static BACKEND: Cell<SchedBackend> = const { Cell::new(SchedBackend::Wheel) };
}

/// Run `f` with every [`EventQueue`] created on this thread using backend
/// `b`. Used by the equivalence tests to build otherwise-identical
/// simulations on both cores without racing over process-global state.
pub fn with_sched_backend<R>(b: SchedBackend, f: impl FnOnce() -> R) -> R {
    let prev = BACKEND.with(|c| c.replace(b));
    let out = f();
    BACKEND.with(|c| c.set(prev));
    out
}

/// The backend configured for the calling thread — what a queue created now
/// would use. The engine builder reads this to pick its partition count.
pub(crate) fn current_backend() -> SchedBackend {
    BACKEND.with(|c| c.get())
}

/// Worker threads the ambient backend would give a simulation built now —
/// 1 for the sequential backends, `n` for [`SchedBackend::Parallel`]. The
/// perf harness records this per scenario in its JSON baseline.
pub fn current_sched_threads() -> usize {
    current_backend().threads()
}

/// The 24-byte key the cores actually sort: fire time, schedule sequence,
/// and the slab slot holding the [`EventKind`].
#[derive(Debug, Clone, Copy)]
struct Key {
    at: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first. `seq` is unique, so `slot` never participates.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Picosecond shift defining the wheel granule (2^12 ps = 4.096 ns).
const GRANULE_SHIFT: u32 = 12;
/// log2 slot counts / spans of the four levels.
const L0_SLOTS: usize = 256;
const L1_SHIFT: u32 = 8; // one L1 slot spans 2^8 granules
const L2_SHIFT: u32 = 14;
const L3_SHIFT: u32 = 20;
/// Granules the wheel can hold before spilling to overflow (~275 ms).
const HORIZON_SHIFT: u32 = 26;

fn granule(at: Time) -> u64 {
    at.picos() >> GRANULE_SHIFT
}

/// One 64-slot coarse level: slot `((g >> shift) & 63)` buckets every key
/// whose window `g >> shift` is within 64 of the cursor's.
#[derive(Default)]
struct CoarseLevel {
    bits: u64,
    slots: Vec<Vec<Key>>,
}

impl CoarseLevel {
    fn new() -> Self {
        CoarseLevel {
            bits: 0,
            slots: (0..64).map(|_| Vec::new()).collect(),
        }
    }

    fn insert(&mut self, idx: usize, key: Key) {
        self.bits |= 1 << idx;
        self.slots[idx].push(key);
    }

    /// The smallest occupied window strictly after `cursor_window`, if any
    /// within the 64-window span.
    fn next_window(&self, cursor_window: u64) -> Option<u64> {
        if self.bits == 0 {
            return None;
        }
        let start = ((cursor_window + 1) & 63) as u32;
        let dist = self.bits.rotate_right(start).trailing_zeros();
        Some(cursor_window + 1 + dist as u64)
    }
}

/// The hierarchical timing wheel.
struct Wheel {
    /// Granule the wheel has advanced to; every wheel-resident key has a
    /// strictly larger granule, every ready-heap key a smaller-or-equal one.
    cursor: u64,
    /// Keys whose granule the cursor has reached, in exact `(at, seq)` order.
    ready: BinaryHeap<Key>,
    /// Inner level: 256 single-granule slots.
    l0_bits: [u64; 4],
    l0: Vec<Vec<Key>>,
    l1: CoarseLevel,
    l2: CoarseLevel,
    l3: CoarseLevel,
    /// Past-horizon keys, ordered by `(at, seq)`.
    overflow: BTreeMap<(Time, u64), u32>,
    /// Keys resident in levels + overflow (excludes `ready`).
    pending: usize,
    /// Scratch reused across cascades.
    scratch: Vec<Key>,
    cascades: u64,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            cursor: 0,
            ready: BinaryHeap::new(),
            l0_bits: [0; 4],
            l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            l1: CoarseLevel::new(),
            l2: CoarseLevel::new(),
            l3: CoarseLevel::new(),
            overflow: BTreeMap::new(),
            pending: 0,
            scratch: Vec::new(),
            cascades: 0,
        }
    }

    fn insert(&mut self, key: Key) {
        let g = granule(key.at);
        if g <= self.cursor {
            self.ready.push(key);
            return;
        }
        let delta = g - self.cursor;
        self.pending += 1;
        if delta < L0_SLOTS as u64 {
            let idx = (g & (L0_SLOTS as u64 - 1)) as usize;
            self.l0_bits[idx >> 6] |= 1 << (idx & 63);
            self.l0[idx].push(key);
        } else if delta < 1 << L2_SHIFT {
            self.l1.insert(((g >> L1_SHIFT) & 63) as usize, key);
        } else if delta < 1 << L3_SHIFT {
            self.l2.insert(((g >> L2_SHIFT) & 63) as usize, key);
        } else if delta < 1 << HORIZON_SHIFT {
            self.l3.insert(((g >> L3_SHIFT) & 63) as usize, key);
        } else {
            self.overflow.insert((key.at, key.seq), key.slot);
        }
    }

    /// Earliest occupied L0 granule strictly after the cursor, if any.
    /// Circular scan of the 256-bit bitmap as at most 5 word probes, each
    /// a shift + trailing_zeros — this runs once per queue advance, which
    /// on shallow queues means nearly once per pop.
    fn next_l0(&self) -> Option<u64> {
        let start = ((self.cursor + 1) & (L0_SLOTS as u64 - 1)) as u32;
        let w = (start >> 6) as usize;
        let b = start & 63;
        // Bits at/after `start` inside the starting word: shifting right by
        // `b` makes trailing_zeros count distance from `start` directly.
        let first = self.l0_bits[w] >> b;
        if first != 0 {
            return Some(self.cursor + 1 + first.trailing_zeros() as u64);
        }
        let mut dist = 64 - b as u64;
        for i in 1..4 {
            let word = self.l0_bits[(w + i) & 3];
            if word != 0 {
                return Some(self.cursor + 1 + dist + word.trailing_zeros() as u64);
            }
            dist += 64;
        }
        // Wrapped fully: only the starting word's bits before `start` left.
        let last = self.l0_bits[w] & ((1u64 << b) - 1);
        if last != 0 {
            return Some(self.cursor + 1 + dist + last.trailing_zeros() as u64);
        }
        None
    }

    /// Move one coarse slot's keys down now that the cursor reached the
    /// start of its window. Re-inserting against the new cursor lands each
    /// key strictly lower (or in `ready`).
    fn cascade(&mut self, level: usize, idx: usize) {
        self.cascades += 1;
        let lvl = match level {
            1 => &mut self.l1,
            2 => &mut self.l2,
            _ => &mut self.l3,
        };
        lvl.bits &= !(1 << idx);
        self.scratch.append(&mut lvl.slots[idx]);
        self.pending -= self.scratch.len();
        let mut batch = std::mem::take(&mut self.scratch);
        for key in batch.drain(..) {
            self.insert(key);
        }
        self.scratch = batch;
    }

    /// Advance the cursor to the next occupied granule / window base and
    /// expose whatever became due. Requires `ready` empty and `pending > 0`;
    /// guarantees progress (each step either fills `ready` or strictly
    /// shrinks the distance to the next due key).
    fn advance_step(&mut self) {
        // Fast path: nearly always only L0 holds keys (coarse levels and
        // overflow fill on multi-ms timers, which are rare among wire-time
        // events). One bitmap scan then replaces the full candidate sweep.
        if self.l1.bits | self.l2.bits | self.l3.bits == 0 && self.overflow.is_empty() {
            let target = self.next_l0().expect("advance_step on empty wheel");
            self.cursor = target;
            let idx = (target & (L0_SLOTS as u64 - 1)) as usize;
            self.l0_bits[idx >> 6] &= !(1 << (idx & 63));
            self.pending -= self.l0[idx].len();
            let slot = &mut self.l0[idx];
            // Single-key granules (the common case at wire timescales) skip
            // the scratch shuffle entirely.
            if slot.len() == 1 {
                self.ready.push(slot.pop().expect("occupied slot"));
            } else {
                self.scratch.append(slot);
                let mut batch = std::mem::take(&mut self.scratch);
                for key in batch.drain(..) {
                    self.ready.push(key);
                }
                self.scratch = batch;
            }
            return;
        }
        let cand_l0 = self.next_l0();
        let cand_l1 = self.l1.next_window(self.cursor >> L1_SHIFT).map(|w| w << L1_SHIFT);
        let cand_l2 = self.l2.next_window(self.cursor >> L2_SHIFT).map(|w| w << L2_SHIFT);
        let cand_l3 = self.l3.next_window(self.cursor >> L3_SHIFT).map(|w| w << L3_SHIFT);
        let cand_ov = self.overflow.keys().next().map(|&(at, _)| granule(at));
        let target = [cand_l0, cand_l1, cand_l2, cand_l3, cand_ov]
            .into_iter()
            .flatten()
            .min()
            .expect("advance_step on empty wheel");
        self.cursor = target;
        // Coarse windows opening exactly at `target` cascade downward,
        // highest level first so freed keys keep falling.
        if cand_l3 == Some(target) {
            self.cascade(3, ((target >> L3_SHIFT) & 63) as usize);
        }
        if cand_l2 == Some(target) {
            self.cascade(2, ((target >> L2_SHIFT) & 63) as usize);
        }
        if cand_l1 == Some(target) {
            self.cascade(1, ((target >> L1_SHIFT) & 63) as usize);
        }
        if cand_l0 == Some(target) {
            let idx = (target & (L0_SLOTS as u64 - 1)) as usize;
            self.l0_bits[idx >> 6] &= !(1 << (idx & 63));
            self.pending -= self.l0[idx].len();
            self.scratch.append(&mut self.l0[idx]);
            let mut batch = std::mem::take(&mut self.scratch);
            for key in batch.drain(..) {
                self.ready.push(key);
            }
            self.scratch = batch;
        }
        // Overflow keys whose granule is now due go straight to ready.
        while let Some((&(at, seq), &slot)) = self.overflow.iter().next() {
            if granule(at) > self.cursor {
                break;
            }
            self.overflow.remove(&(at, seq));
            self.pending -= 1;
            self.ready.push(Key { at, seq, slot });
        }
    }

    fn peek(&mut self) -> Option<&Key> {
        while self.ready.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.advance_step();
        }
        self.ready.peek()
    }

    fn pop(&mut self) -> Option<Key> {
        self.peek()?;
        self.ready.pop()
    }
}

/// The key-ordering core: production wheel or oracle heap.
enum Core {
    Wheel(Box<Wheel>),
    Heap(BinaryHeap<Key>),
}

impl Core {
    fn insert(&mut self, key: Key) {
        match self {
            Core::Wheel(w) => w.insert(key),
            Core::Heap(h) => h.push(key),
        }
    }

    fn pop(&mut self) -> Option<Key> {
        match self {
            Core::Wheel(w) => w.pop(),
            Core::Heap(h) => h.pop(),
        }
    }

    fn peek(&mut self) -> Option<Key> {
        match self {
            Core::Wheel(w) => w.peek().copied(),
            Core::Heap(h) => h.peek().copied(),
        }
    }

    fn cascades(&self) -> u64 {
        match self {
            Core::Wheel(w) => w.cascades,
            Core::Heap(_) => 0,
        }
    }
}

/// Marks an event that entered the queue outside any FIFO lane.
pub(crate) const NO_LANE: u32 = u32::MAX;

/// One slab slot: the payload (if pending) plus the generation that makes
/// [`TimerHandle`]s single-use.
struct SlabEntry {
    gen: u64,
    state: SlotState,
}

enum SlotState {
    Free,
    Live { kind: EventKind, lane: u32 },
    /// Cancelled; the key is still in the core and reaped lazily.
    Dead,
}

/// Slab slots kept through [`EventQueue::release_excess`] so steady-state
/// reuse never re-allocates.
const RETAIN_SLOTS: usize = 64;

/// A total-ordered future event queue.
pub struct EventQueue {
    core: Core,
    /// Slab of event payloads, indexed by key slot.
    slab: Vec<SlabEntry>,
    /// Free slots in the slab, reused LIFO so the hot slots stay cached.
    free: Vec<u32>,
    /// Per-lane parked keys; the front of a non-empty lane is the only key
    /// of that lane resident in the core.
    lanes: Vec<VecDeque<Key>>,
    /// Events pending dispatch (excludes cancelled ones).
    live: usize,
    next_seq: u64,
    next_gen: u64,
    stats: SchedStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Create an empty queue on the thread's configured backend.
    pub fn new() -> Self {
        let core = match BACKEND.with(|c| c.get()) {
            // Each parallel partition's queue is an ordinary timing wheel;
            // parallelism lives in the engine, not the queue core.
            SchedBackend::Wheel | SchedBackend::Parallel(_) => {
                Core::Wheel(Box::new(Wheel::new()))
            }
            SchedBackend::Heap => Core::Heap(BinaryHeap::new()),
        };
        EventQueue {
            core,
            slab: Vec::new(),
            free: Vec::new(),
            lanes: Vec::new(),
            live: 0,
            next_seq: 0,
            next_gen: 0,
            stats: SchedStats::default(),
        }
    }

    /// Size the FIFO lane table (engine build time: 4 lanes per link).
    pub(crate) fn ensure_lanes(&mut self, lanes: usize) {
        if self.lanes.len() < lanes {
            self.lanes.resize_with(lanes, VecDeque::new);
        }
    }

    fn alloc(&mut self, kind: EventKind, lane: u32) -> (u32, u64) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.stats.slab_hits += 1;
                self.slab[s as usize] = SlabEntry {
                    gen,
                    state: SlotState::Live { kind, lane },
                };
                s
            }
            None => {
                self.stats.slab_misses += 1;
                let s = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(SlabEntry {
                    gen,
                    state: SlotState::Live { kind, lane },
                });
                s
            }
        };
        self.live += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.live as u64);
        (slot, gen)
    }

    fn release(&mut self, slot: u32) {
        self.slab[slot as usize].state = SlotState::Free;
        self.free.push(slot);
        self.stats.free_high_water = self.stats.free_high_water.max(self.free.len() as u64);
    }

    /// Schedule `kind` at absolute time `at`, tie-broken by schedule order.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(at, seq, kind);
    }

    /// Schedule `kind` at `at` with an explicit canonical tie key (see
    /// [`tie`]). The engine's internal pushes all use this so the total
    /// order is independent of push order, and therefore of the backend.
    pub(crate) fn push_keyed(&mut self, at: Time, tie: u64, kind: EventKind) {
        let (slot, _) = self.alloc(kind, NO_LANE);
        self.core.insert(Key { at, seq: tie, slot });
    }

    /// [`EventQueue::push_keyed`] on FIFO lane `lane`: events on one lane
    /// must be pushed in non-decreasing time order, which lets everything
    /// behind the lane head wait in a deque instead of the core.
    pub(crate) fn push_lane_keyed(&mut self, at: Time, lane: u32, tie: u64, kind: EventKind) {
        debug_assert!((lane as usize) < self.lanes.len(), "unknown lane {lane}");
        let (slot, _) = self.alloc(kind, lane);
        let key = Key { at, seq: tie, slot };
        let q = &mut self.lanes[lane as usize];
        if let Some(back) = q.back() {
            debug_assert!(at >= back.at, "lane {lane} went backwards");
            q.push_back(key);
            self.stats.lane_parks += 1;
        } else {
            q.push_back(key);
            self.core.insert(key);
        }
    }

    /// Schedule a cancellable timer; the handle stays valid until the timer
    /// fires or is cancelled. Tie-broken by schedule order.
    pub fn push_timer(&mut self, at: Time, node: NodeId, token: u64) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_timer_keyed(at, seq, node, token)
    }

    /// [`EventQueue::push_timer`] with an explicit canonical tie key.
    pub(crate) fn push_timer_keyed(
        &mut self,
        at: Time,
        tie: u64,
        node: NodeId,
        token: u64,
    ) -> TimerHandle {
        let (slot, gen) = self.alloc(EventKind::Timer { node, token }, NO_LANE);
        self.core.insert(Key { at, seq: tie, slot });
        TimerHandle { slot, gen }
    }

    /// Cancel the timer behind `handle`. Returns `false` if it already
    /// fired, was already cancelled, or the handle is stale.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(entry) = self.slab.get_mut(handle.slot as usize) else {
            return false;
        };
        if entry.gen != handle.gen || !matches!(entry.state, SlotState::Live { .. }) {
            return false;
        }
        debug_assert!(
            matches!(entry.state, SlotState::Live { lane: NO_LANE, .. }),
            "cancellable events never ride a lane"
        );
        entry.state = SlotState::Dead;
        self.live -= 1;
        true
    }

    /// Retire a key just popped from the core: free its slab slot, unpark
    /// its lane successor, and produce the event — or `None` if the key was
    /// a cancelled (dead) timer.
    fn admit(&mut self, key: Key) -> Option<Scheduled> {
        let entry = &mut self.slab[key.slot as usize];
        match std::mem::replace(&mut entry.state, SlotState::Free) {
            SlotState::Dead => {
                self.stats.dead_dispatches += 1;
                self.free.push(key.slot);
                self.stats.free_high_water =
                    self.stats.free_high_water.max(self.free.len() as u64);
                None
            }
            SlotState::Live { kind, lane } => {
                self.free.push(key.slot);
                self.stats.free_high_water =
                    self.stats.free_high_water.max(self.free.len() as u64);
                self.live -= 1;
                if lane != NO_LANE {
                    let q = &mut self.lanes[lane as usize];
                    let head = q.pop_front();
                    debug_assert!(head.is_some_and(|h| h.slot == key.slot));
                    if let Some(next) = q.front() {
                        self.core.insert(*next);
                    }
                }
                Some(Scheduled {
                    at: key.at,
                    seq: key.seq,
                    kind,
                })
            }
            SlotState::Free => unreachable!("core key points at a free slot"),
        }
    }

    /// Remove and return the earliest live event, reaping any cancelled
    /// keys encountered on the way.
    pub fn pop(&mut self) -> Option<Scheduled> {
        loop {
            let key = self.core.pop()?;
            if let Some(ev) = self.admit(key) {
                return Some(ev);
            }
        }
    }

    /// [`EventQueue::pop`], but only if the earliest live event fires at or
    /// before `deadline`. One core traversal where a `peek_time` + `pop`
    /// pair would make two — this is the event loop's hot path. Cancelled
    /// keys at the head are reaped even when they lie past the deadline,
    /// matching `peek_time`'s contract.
    pub fn pop_if_at_or_before(&mut self, deadline: Time) -> Option<Scheduled> {
        loop {
            let key = self.core.peek()?;
            if key.at > deadline
                && !matches!(self.slab[key.slot as usize].state, SlotState::Dead)
            {
                return None;
            }
            let key = self.core.pop().expect("peeked key");
            if let Some(ev) = self.admit(key) {
                return Some(ev);
            }
        }
    }

    /// Fire time of the earliest live event, if any. Reaps cancelled keys,
    /// hence `&mut`.
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let key = self.core.peek()?;
            if matches!(self.slab[key.slot as usize].state, SlotState::Dead) {
                let key = self.core.pop().expect("peeked key");
                self.stats.dead_dispatches += 1;
                self.release(key.slot);
                continue;
            }
            return Some(key.at);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Return excess slab capacity to the allocator. Only meaningful at
    /// quiescence (no live events): a storm's peak population otherwise
    /// pins its capacity for the rest of the run. Keeps a small retained
    /// core so steady-state reuse stays allocation-free.
    pub fn release_excess(&mut self) {
        if self.live != 0 || self.slab.len() <= RETAIN_SLOTS {
            return;
        }
        // Dead keys may still sit in the core; they reference slots we are
        // about to drop, so reap them first.
        while self.pop().is_some() {}
        let released = self.slab.len().saturating_sub(RETAIN_SLOTS);
        self.stats.slots_released += released as u64;
        self.slab.clear();
        self.slab.shrink_to(RETAIN_SLOTS);
        self.free.clear();
        self.free.shrink_to(RETAIN_SLOTS);
        for q in &mut self.lanes {
            debug_assert!(q.is_empty());
            q.shrink_to_fit();
        }
        // The core is empty of live keys; rebuild it to drop bucket capacity.
        self.core = match &self.core {
            Core::Wheel(_) => Core::Wheel(Box::new(Wheel::new())),
            Core::Heap(_) => Core::Heap(BinaryHeap::new()),
        };
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.cascades = self.core.cascades();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Micro-benchmark of the wheel vs heap backends on the shallow-queue
    /// pattern the FAA scenarios produce: one far timer parked in a coarse
    /// level plus steady near-term churn. Ignored by default (timing is
    /// machine-dependent); run with `cargo test -q --release -p extmem-sim
    /// qbench -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn qbench() {
        fn run(n: u64) -> u64 {
            let mut q = EventQueue::new();
            let _h = q.push_timer(Time::from_micros(50), NodeId(0), 1);
            let mut now = 0u64;
            let mut acc = 0u64;
            for i in 0..12u64 {
                q.push(Time::from_picos(now + 170_000 + i * 40_000), timer(1, i));
            }
            for i in 0..n {
                let ev = q.pop().expect("event");
                now = ev.at.picos();
                acc ^= ev.seq;
                q.push(Time::from_picos(now + 170_000 + (i % 7) * 13_000), timer(1, i));
            }
            acc
        }
        const N: u64 = 3_000_000;
        for backend in [SchedBackend::Wheel, SchedBackend::Heap] {
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = std::time::Instant::now();
                let acc = with_sched_backend(backend, || run(N));
                std::hint::black_box(acc);
                best = best.min(t.elapsed().as_secs_f64());
            }
            println!("{backend:?}: {:.1} ns/op", best * 1e9 / N as f64);
        }
    }

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    fn token_of(s: Scheduled) -> u64 {
        match s.kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        for backend in [SchedBackend::Wheel, SchedBackend::Heap] {
            with_sched_backend(backend, || {
                let mut q = EventQueue::new();
                q.push(Time::from_nanos(30), timer(0, 3));
                q.push(Time::from_nanos(10), timer(0, 1));
                q.push(Time::from_nanos(20), timer(0, 2));
                let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
                assert_eq!(order, vec![1, 2, 3]);
            });
        }
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        for expect in 0..100 {
            assert_eq!(token_of(q.pop().unwrap()), expect);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(7), timer(1, 0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(7)));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleaved push/pop churn must not grow the slab beyond the
        // high-water mark of concurrently pending events.
        for round in 0..50u64 {
            q.push(Time::from_nanos(round), timer(0, round));
            q.push(Time::from_nanos(round), timer(0, round + 1000));
            // Pops the earliest pending event (a leftover from an earlier
            // round once the backlog builds), freeing its slot for reuse.
            let s = q.pop().unwrap();
            assert!(s.at <= Time::from_nanos(round));
        }
        assert_eq!(q.len(), 50);
        assert!(
            q.slab.len() <= 51,
            "slab grew to {} for 51 peak events",
            q.slab.len()
        );
        let mut last = None;
        while let Some(s) = q.pop() {
            assert!(last.is_none_or(|l| (s.at, s.seq) > l));
            last = Some((s.at, s.seq));
        }
        assert!(q
            .slab
            .iter()
            .all(|e| matches!(e.state, SlotState::Free)));
    }

    #[test]
    fn far_future_events_cascade_back_in_order() {
        let mut q = EventQueue::new();
        // One key per wheel level plus overflow, pushed out of order.
        let times = [
            Time::from_nanos(5),             // ready/L0 territory
            Time::from_micros(2),            // L1
            Time::from_millis(1),            // L2
            Time::from_millis(80),           // L3
            Time::from_secs(2),              // overflow
            Time::from_secs(3),              // overflow
        ];
        for (i, &t) in times.iter().enumerate().rev() {
            q.push(t, timer(0, i as u64));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cancel_suppresses_dispatch_and_stales_handle() {
        let mut q = EventQueue::new();
        let h = q.push_timer(Time::from_nanos(10), NodeId(0), 7);
        q.push(Time::from_nanos(20), timer(0, 8));
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "second cancel is a stale no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(token_of(q.pop().unwrap()), 8);
        assert!(q.pop().is_none());
        assert_eq!(q.stats().dead_dispatches, 1);
        // The slot is reused; the old handle must not kill the new timer.
        let h2 = q.push_timer(Time::from_nanos(30), NodeId(0), 9);
        assert!(!q.cancel(h));
        assert_eq!(token_of(q.pop().unwrap()), 9);
        assert!(!q.cancel(h2), "fired handle is stale");
    }

    #[test]
    fn cancelled_head_does_not_stall_peek() {
        let mut q = EventQueue::new();
        let h = q.push_timer(Time::from_nanos(10), NodeId(0), 1);
        q.push(Time::from_nanos(50), timer(0, 2));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(50)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn release_excess_shrinks_slab_at_quiescence() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(Time::from_nanos(i), timer(0, i));
        }
        // A cancelled timer's key must not keep its slot pinned either.
        let h = q.push_timer(Time::from_secs(5), NodeId(0), 0);
        q.cancel(h);
        while q.pop().is_some() {}
        assert!(q.is_empty());
        assert!(q.slab.len() > RETAIN_SLOTS);
        let before = q.stats();
        assert_eq!(before.free_high_water, 10_001);
        q.release_excess();
        assert!(q.slab.capacity() <= RETAIN_SLOTS);
        assert!(q.stats().slots_released >= 10_000 - RETAIN_SLOTS as u64);
        // The queue stays fully usable afterwards.
        q.push(Time::from_nanos(1), timer(0, 42));
        assert_eq!(token_of(q.pop().unwrap()), 42);
    }

    #[test]
    fn release_excess_is_a_noop_while_events_pend() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(Time::from_nanos(i), timer(0, i));
        }
        q.release_excess();
        assert_eq!(q.len(), 1000);
        assert_eq!(q.stats().slots_released, 0);
    }

    #[test]
    fn lanes_preserve_global_order() {
        let mut q = EventQueue::new();
        q.ensure_lanes(2);
        // Lane 0 and lane 1 each monotone; a core push interleaves.
        q.push_lane_keyed(Time::from_nanos(10), 0, 0, timer(0, 0));
        q.push_lane_keyed(Time::from_nanos(30), 0, 1, timer(0, 1));
        q.push_lane_keyed(Time::from_nanos(20), 1, 2, timer(0, 2));
        q.push_keyed(Time::from_nanos(25), 3, timer(0, 3));
        q.push_lane_keyed(Time::from_nanos(40), 1, 4, timer(0, 4));
        let mut order = Vec::new();
        let mut last = None;
        while let Some(s) = q.pop() {
            assert!(last.is_none_or(|l| (s.at, s.seq) > l));
            last = Some((s.at, s.seq));
            order.push(token_of(s));
        }
        assert_eq!(order, vec![0, 2, 3, 1, 4]);
        assert_eq!(q.stats().lane_parks, 2);
    }

    #[test]
    fn equal_time_lane_and_core_events_keep_seq_order() {
        let mut q = EventQueue::new();
        q.ensure_lanes(1);
        let t = Time::from_nanos(100);
        q.push_lane_keyed(t, 0, 0, timer(0, 0)); // tie 0, lane head
        q.push_keyed(t, 1, timer(0, 1)); // tie 1, core
        q.push_lane_keyed(t, 0, 2, timer(0, 2)); // tie 2, parked
        q.push_keyed(t, 3, timer(0, 3)); // tie 3, core
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
