//! The event queue.

use extmem_types::{NodeId, PortId, Time};
use extmem_wire::Packet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at `node` on `port`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Receiving port (local to `node`).
        port: PortId,
        /// The packet, after any fault injection.
        packet: Packet,
    },
    /// `node` finishes serializing a packet out of `port`; the port is free
    /// again and the node's `on_tx_done` hook runs.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// A timer scheduled by `node` fires with its opaque `token`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque value chosen by the node at scheduling time.
        token: u64,
    },
}

/// An event plus its position in the total order.
#[derive(Debug)]
pub struct Scheduled {
    /// Fire time.
    pub at: Time,
    /// Tie-breaker: events scheduled earlier fire earlier at equal times.
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A total-ordered future event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Fire time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), timer(0, 3));
        q.push(Time::from_nanos(10), timer(0, 1));
        q.push(Time::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        for expect in 0..100 {
            match q.pop().unwrap().kind {
                EventKind::Timer { token, .. } => assert_eq!(token, expect),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(7), timer(1, 0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(7)));
    }
}
