//! A deterministic discrete-event network simulator.
//!
//! This crate is the substrate on which the reproduction of *Generic
//! External Memory for Switch Data Planes* (HotNets 2018) runs: it stands in
//! for the paper's physical testbed (a Tofino switch, three servers, 40 Gbps
//! links). The design goals, in order:
//!
//! 1. **Determinism.** A simulation is a single-threaded event loop with a
//!    totally ordered event queue (`(time, sequence)` keys) and one seeded
//!    RNG. The same topology + seed always produces the identical packet
//!    trace; the integration suite asserts this on a trace digest.
//! 2. **Faithful link timing.** Links model serialization delay (at the
//!    configured rate, rounded up to the picosecond) plus propagation delay.
//!    A node may serialize only one packet per port at a time and is told
//!    when transmission completes, so *nodes* own their queues — which is
//!    exactly what lets the switch model expose queue depth to the paper's
//!    packet-buffer primitive.
//! 3. **Fault injection.** Links can drop or corrupt packets with configured
//!    probabilities (the §7 "RDMA packet drops" discussion), deterministic
//!    under the simulation seed.
//!
//! The key abstraction is the [`Node`] trait: anything attached to the
//! topology — traffic generator, RNIC-backed memory server, programmable
//! switch — implements it and reacts to packet arrivals, timer expirations
//! and transmit-complete notifications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod fabric;
pub mod link;
pub mod node;
mod partition;
pub mod queue;
pub mod trace;

pub use engine::{SimBuilder, Simulator};
pub use fabric::{Fabric, FabricSpec};
pub use event::{current_sched_threads, with_sched_backend, SchedBackend, SchedStats, TimerHandle};
pub use partition::ParStats;
pub use link::{FaultSpec, LinkSpec, LinkStats};
pub use node::{Node, NodeCtx};
pub use queue::TxQueue;
pub use trace::{TraceEvent, TraceSink};
