//! placeholder
