//! One-RTT cuckoo lookup invariants at simulation level.
//!
//! The cuckoo rework's central promise is *no transient miss*: a key that is
//! resident when a lookup is issued resolves in exactly one filter-steered
//! bucket READ, even while the relocation machinery is displacing entries
//! on the same wire. These tests drive the full switch + RNIC topology:
//!
//! * a relocation storm — scripted inserts/deletes churn the table under
//!   live traffic; every packet must resolve in one READ with zero
//!   slow-path punts, and the remote region must converge bit-for-bit to
//!   the control-plane directory,
//! * the collision cell in both table modes — the exact flow pair the
//!   direct-hash table aliases to one slot gets two distinct actions in
//!   cuckoo mode, demonstrated end to end by steering the packets to
//!   different egress ports.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{Arrival, FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::cuckoo::{CuckooConfig, CuckooDirectory};
use extmem_core::lookup::{
    install_cuckoo_image, install_remote_action, ActionEntry, ChurnScript, ControlOp,
    LookupTableProgram, TOKEN_CHURN,
};
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::switch::program_token;
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, TimeDelta};

fn lookup_fib() -> Fib {
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    fib
}

/// Live churn under traffic: every lookup issued while relocations are in
/// flight still resolves in exactly one READ — the event-interleaved
/// no-transient-miss invariant, asserted over 1500 packets and 192 table
/// operations sharing one wire. Runs in both wire modes: verb (filter-
/// steered bucket READs, READ-verify + WRITE relocations) and remote-op
/// (hash-probe-and-fetch lookups, conditional-WRITE relocations).
fn relocation_storm(remote_ops: bool) {
    const COUNT: u64 = 1_500;
    const DSCP: u8 = 46;
    const TRAFFIC_KEYS: u16 = 140;
    const CHURN_KEYS: u16 = 96;
    const WINDOW: usize = 8;
    let cfg = CuckooConfig {
        buckets: 64,
        filter_cells: 2048,
        filter_hashes: 2,
        max_plan_steps: 64,
    };
    let mut dir = CuckooDirectory::new(cfg);
    let flows: Vec<FiveTuple> = (0..TRAFFIC_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP)).unwrap();
    }
    let churn_keys: Vec<FiveTuple> = (0..CHURN_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 50_000 + i, 80, 17))
        .collect();
    let mut ops = Vec::new();
    for (i, k) in churn_keys.iter().enumerate() {
        ops.push(ControlOp::Insert(*k, ActionEntry::set_dscp(12)));
        if i >= WINDOW {
            ops.push(ControlOp::Remove(churn_keys[i - WINDOW]));
        }
    }
    for k in &churn_keys[CHURN_KEYS as usize - WINDOW..] {
        ops.push(ControlOp::Remove(*k));
    }
    let script = ChurnScript {
        ops,
        period: TimeDelta::from_micros(1),
    };

    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    let (rkey, base_va) = (channel.rkey, channel.base_va);
    install_cuckoo_image(&mut nic, &channel, &dir);
    let prog = LookupTableProgram::cuckoo(lookup_fib(), channel, dir, None)
        .with_remote_ops(remote_ops)
        .with_churn(script);

    let mut b = SimBuilder::new(83);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::Zipf(1.1),
        frame_len: 256,
        offered: Some(Rate::from_gbps(5)),
        arrival: Arrival::Paced,
        count: COUNT,
        seed: 17,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let mut sink = SinkNode::new("server");
    sink.expect_dscp = Some(DSCP);
    let server = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.schedule_timer(switch, TimeDelta::from_micros(2), program_token(TOKEN_CHURN));
    sim.run_to_quiescence();

    let sink = sim.node::<SinkNode>(server);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<LookupTableProgram>();
    let s = prog.stats();
    assert_eq!(sink.received, COUNT, "packets lost: {s:?}");
    assert_eq!(sink.dscp_mismatch, 0, "a punted packet kept its old DSCP");
    assert_eq!(s.remote_lookups, COUNT, "cacheless: all remote: {s:?}");
    assert_eq!(s.slow_path, 0, "transient miss punted: {s:?}");
    assert_eq!(s.bucket_misses, 0, "filter misdirected a probe: {s:?}");
    assert_eq!(s.reads_per_miss(), 1.0, "more than one READ per miss: {s:?}");
    assert_eq!(s.rtts_per_miss(), Some(1.0), "one round trip per miss: {s:?}");
    assert_eq!(s.reads_per_lookup(), Some(1.0), "{s:?}");
    assert!(s.relocation_moves > 0, "storm never displaced anyone: {s:?}");
    assert_eq!(s.inserts_applied, CHURN_KEYS as u64, "{s:?}");
    assert_eq!(s.removes_applied, CHURN_KEYS as u64, "{s:?}");
    assert_eq!(s.inserts_rejected, 0, "{s:?}");
    assert_eq!(s.verify_mismatches, 0, "directory drifted: {s:?}");
    assert!(prog.relocation_idle(), "relocation work leaked: {s:?}");

    // The remote bytes and the data plane's filter both converge to the
    // control-plane directory exactly.
    let dir = prog.directory().unwrap();
    let image = dir.encode_region();
    let remote = sim
        .node::<RnicNode>(table)
        .region(rkey)
        .read(base_va, image.len() as u64)
        .unwrap();
    assert_eq!(remote, &image[..], "remote region diverged from directory");
    assert_eq!(
        prog.live_filter().unwrap().raw_counts(),
        dir.filter().raw_counts(),
        "live filter diverged from planned filter"
    );
    let nic = sim.node::<RnicNode>(table).stats();
    assert_eq!(nic.cpu_packets, 0, "remote memory must stay one-sided");
    if remote_ops {
        // Lookups and relocation moves all rode the remote-op engine.
        assert!(
            nic.ext_ops >= COUNT + s.relocation_moves,
            "probes + cond-writes must be remote ops: {nic:?}"
        );
    } else {
        assert_eq!(nic.ext_ops, 0, "verb baseline must not use remote ops");
    }
}

#[test]
fn no_transient_miss_under_relocation_storm() {
    relocation_storm(false);
}

#[test]
fn no_transient_miss_under_relocation_storm_remote_ops() {
    relocation_storm(true);
}

/// A pair of distinct flows that alias under the direct-hash slot
/// arithmetic over `entries` slots.
fn colliding_pair(entries: u64) -> (FiveTuple, FiveTuple) {
    use extmem_switch::hash::flow_index;
    for a in 0..500u16 {
        for b in (a + 1)..500 {
            let fa = FiveTuple::new(host_ip(0), host_ip(1), 1000 + a, 80, 17);
            let fb = FiveTuple::new(host_ip(0), host_ip(1), 1000 + b, 80, 17);
            if flow_index(&fa, entries) == flow_index(&fb, entries) {
                return (fa, fb);
            }
        }
    }
    panic!("a collision must exist in 500 flows over {entries} slots");
}

/// Direct-hash mode: the aliasing pair shares one slot, so the uninstalled
/// flow silently receives the installed flow's action — the defect the
/// cuckoo mode exists to remove (and the ablation must keep exhibiting).
#[test]
fn collision_cell_direct_hash_aliases_the_pair() {
    const ENTRIES: u64 = 64;
    const DSCP: u8 = 46;
    let (fa, fb) = colliding_pair(ENTRIES);
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(ENTRIES * 2048),
    );
    // Only `fa` is installed; `fb` hashes to the same slot.
    install_remote_action(&mut nic, &channel, 2048, &fa, ActionEntry::set_dscp(DSCP));
    let prog = LookupTableProgram::new(lookup_fib(), channel, 2048, None);

    let mut b = SimBuilder::new(89);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: vec![fa, fb].into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(2)),
        arrival: Arrival::Paced,
        count: 2,
        seed: 1,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let mut sink = SinkNode::new("server");
    sink.expect_dscp = Some(DSCP);
    let server = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let sink = sim.node::<SinkNode>(server);
    let sw: &SwitchNode = sim.node(switch);
    let s = sw.program::<LookupTableProgram>().stats();
    assert_eq!(sink.received, 2);
    // The alias: BOTH packets carry fa's DSCP, including fb's.
    assert_eq!(sink.dscp_mismatch, 0, "fb must receive fa's action: {s:?}");
    assert_eq!(s.actions_applied, 2, "{s:?}");
}

/// Cuckoo mode: the same colliding pair resolves to two distinct actions,
/// one READ each — proven end to end by steering `fb` out a different
/// egress port while `fa` keeps its DSCP mark.
#[test]
fn collision_cell_cuckoo_resolves_the_pair() {
    const DSCP_A: u8 = 46;
    const DSCP_B: u8 = 12;
    let (fa, fb) = colliding_pair(64);
    let mut dir = CuckooDirectory::new(CuckooConfig::for_capacity(64));
    dir.install(fa, ActionEntry::set_dscp(DSCP_A)).unwrap();
    dir.install(
        fb,
        ActionEntry {
            port_override: Some(PortId(3)),
            ..ActionEntry::set_dscp(DSCP_B)
        },
    )
    .unwrap();
    let mut nic = RnicNode::new("tablesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(dir.region_bytes()),
    );
    install_cuckoo_image(&mut nic, &channel, &dir);
    let prog = LookupTableProgram::cuckoo(lookup_fib(), channel, dir, None);

    let mut b = SimBuilder::new(97);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: vec![fa, fb].into(),
        pick: FlowPick::RoundRobin,
        frame_len: 256,
        offered: Some(Rate::from_gbps(2)),
        arrival: Arrival::Paced,
        count: 2,
        seed: 1,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let mut sink_a = SinkNode::new("server-a");
    sink_a.expect_dscp = Some(DSCP_A);
    let server_a = b.add_node(Box::new(sink_a));
    let mut sink_b = SinkNode::new("server-b");
    sink_b.expect_dscp = Some(DSCP_B);
    let server_b = b.add_node(Box::new(sink_b));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server_a, PortId(0), link);
    b.connect(switch, PortId(3), server_b, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), table, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_to_quiescence();

    let sw: &SwitchNode = sim.node(switch);
    let s = sw.program::<LookupTableProgram>().stats();
    let sink_a = sim.node::<SinkNode>(server_a);
    let sink_b = sim.node::<SinkNode>(server_b);
    assert_eq!(sink_a.received, 1, "fa's packet by FIB: {s:?}");
    assert_eq!(sink_a.dscp_mismatch, 0, "fa got the wrong action: {s:?}");
    assert_eq!(sink_b.received, 1, "fb's packet steered to port 3: {s:?}");
    assert_eq!(sink_b.dscp_mismatch, 0, "fb got the wrong action: {s:?}");
    assert_eq!(s.bucket_reads, 2, "one READ each: {s:?}");
    assert_eq!(s.bucket_misses, 0, "{s:?}");
    assert_eq!(s.slow_path, 0, "{s:?}");
    assert_eq!(s.reads_per_miss(), 1.0, "{s:?}");
}
