//! Remote memory across multiple switch hops.
//!
//! The paper assumes directly-attached memory servers, noting (§3,
//! footnote) that "in future work, it is possible to use any remote servers
//! in the same RoCE network after some technical challenges are addressed".
//! Because RDMA requests are "merely regular Ethernet packets" (§3), an
//! ordinary L2 switch between the ToR and the memory server should be
//! transparent to every primitive — these tests verify exactly that, at the
//! cost of one extra store-and-forward hop of latency.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, L2Program, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

/// ToR ports: 0 sender, 1 receiver, 2 → aggregation switch.
/// Agg ports: 0 → ToR, 1 → memory server.
#[test]
fn state_store_works_through_an_intermediate_switch() {
    let counters = 512u64;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(3)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2), // the ToR-local port toward the server (via the agg)
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey;
    let base = channel.base_va;

    let mut tor_fib = Fib::new(8);
    tor_fib.install(host_mac(0), PortId(0));
    tor_fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(channel, FaaConfig::default());
    let tor_prog = StateStoreProgram::new(tor_fib, engine, TimeDelta::from_micros(30));

    // The aggregation switch is a plain L2 forwarder that knows the
    // server's MAC on port 1 and the ToR('s switch identity) on port 0.
    let mut agg_fib = Fib::new(8);
    agg_fib.install(host_endpoint(3).mac, PortId(1));
    agg_fib.install(switch_endpoint().mac, PortId(0));
    let agg_prog = L2Program {
        fib: agg_fib,
        forwarded: 0,
    };

    let mut b = SimBuilder::new(55);
    let tor = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(tor_prog),
    )));
    let agg = b.add_node(Box::new(SwitchNode::new(
        "agg",
        SwitchConfig::default(),
        Box::new(agg_prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(5),
            800,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(tor, PortId(0), gen, PortId(0), link);
    b.connect(tor, PortId(1), sink, PortId(0), link);
    b.connect(tor, PortId(2), agg, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(agg, PortId(1), srv, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(20));

    let tor_ref: &SwitchNode = sim.node(tor);
    let prog = tor_ref.program::<StateStoreProgram>();
    assert!(prog.is_quiescent(), "{:?}", prog.faa_stats());
    let nic = sim.node::<RnicNode>(srv);
    let remote = read_remote_counters(nic, rkey, base, counters);
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote.iter().sum::<u64>(), truth);
    assert_eq!(truth, 800);
    assert_eq!(nic.stats().cpu_packets, 0);
    assert_eq!(sim.node::<SinkNode>(sink).received, 800);
}

#[test]
fn packet_buffer_works_through_an_intermediate_switch() {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(3)));
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(4));

    let mut tor_fib = Fib::new(8);
    tor_fib.install(host_mac(0), PortId(0));
    tor_fib.install(host_mac(1), PortId(1));
    let tor_prog = PacketBufferProgram::new(
        tor_fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 8_192,
            resume_load_qbytes: 4_096,
        },
        8,
        TimeDelta::from_micros(100),
    );
    let mut agg_fib = Fib::new(8);
    agg_fib.install(host_endpoint(3).mac, PortId(1));
    agg_fib.install(switch_endpoint().mac, PortId(0));
    let agg_prog = L2Program {
        fib: agg_fib,
        forwarded: 0,
    };

    let mut b = SimBuilder::new(56);
    let tor = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(tor_prog),
    )));
    let agg = b.add_node(Box::new(SwitchNode::new(
        "agg",
        SwitchConfig::default(),
        Box::new(agg_prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            1000,
            Rate::from_gbps(25),
            500,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    b.connect(tor, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        tor,
        PortId(1),
        sink,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    b.connect(tor, PortId(2), agg, PortId(0), LinkSpec::testbed_40g());
    let srv = b.add_node(Box::new(nic));
    b.connect(agg, PortId(1), srv, PortId(0), LinkSpec::testbed_40g());

    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(30));

    let tor_ref: &SwitchNode = sim.node(tor);
    let s = tor_ref.program::<PacketBufferProgram>().stats();
    assert!(
        s.stored > 0,
        "detour must engage through the extra hop: {s:?}"
    );
    assert_eq!(s.stored, s.loaded, "{s:?}");
    assert_eq!(s.lost_entries, 0);
    let sink = sim.node::<SinkNode>(sink);
    assert_eq!(sink.received, 500, "every packet delivered");
    assert_eq!(sink.total_reorders(), 0, "ordering survives the longer RTT");
    assert_eq!(sim.node::<RnicNode>(srv).stats().cpu_packets, 0);
}
