//! Property-based tests for the wire formats: every codec must round-trip
//! arbitrary field values, and the ICRC must catch arbitrary single-byte
//! corruption anywhere in its coverage.

use extmem_types::{QpNum, Rkey};
use extmem_wire::aeth::{Aeth, NakCode, Syndrome};
use extmem_wire::atomic::{AtomicAckEth, AtomicEth};
use extmem_wire::bth::{Bth, Opcode};
use extmem_wire::payload::{build_data_packet, parse_data_packet, MIN_DATA_FRAME};
use extmem_wire::reth::Reth;
use extmem_wire::roce::{RoceEndpoint, RoceExt, RocePacket};
use extmem_wire::{MacAddr, Packet};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::WriteFirst),
        Just(Opcode::WriteMiddle),
        Just(Opcode::WriteLast),
        Just(Opcode::WriteOnly),
        Just(Opcode::ReadRequest),
        Just(Opcode::ReadRespFirst),
        Just(Opcode::ReadRespMiddle),
        Just(Opcode::ReadRespLast),
        Just(Opcode::ReadRespOnly),
        Just(Opcode::Acknowledge),
        Just(Opcode::AtomicAcknowledge),
        Just(Opcode::FetchAdd),
    ]
}

fn arb_endpoint() -> impl Strategy<Value = RoceEndpoint> {
    (any::<[u8; 6]>(), any::<u32>()).prop_map(|(mac, ip)| {
        // Force unicast so frames are realistic.
        let mut mac = mac;
        mac[0] &= 0xfe;
        RoceEndpoint {
            mac: MacAddr(mac),
            ip,
        }
    })
}

proptest! {
    #[test]
    fn bth_roundtrip(
        op in arb_opcode(),
        solicited: bool,
        ack_req: bool,
        pad in 0u8..4,
        pkey: u16,
        qpn in 0u32..0x0100_0000,
        psn in 0u32..0x0100_0000,
    ) {
        let bth = Bth {
            opcode: op,
            solicited,
            mig_req: false,
            pad_count: pad,
            tver: 0,
            pkey,
            dest_qp: QpNum(qpn),
            ack_req,
            psn,
        };
        let mut buf = [0u8; Bth::LEN];
        bth.write(&mut buf).unwrap();
        prop_assert_eq!(Bth::parse(&buf).unwrap(), bth);
    }

    #[test]
    fn reth_roundtrip(va: u64, rkey: u32, len: u32) {
        let r = Reth { va, rkey: Rkey(rkey), dma_len: len };
        let mut buf = [0u8; Reth::LEN];
        r.write(&mut buf).unwrap();
        prop_assert_eq!(Reth::parse(&buf).unwrap(), r);
    }

    #[test]
    fn atomic_roundtrip(va: u64, rkey: u32, add: u64, cmp: u64, orig: u64) {
        let a = AtomicEth { va, rkey: Rkey(rkey), swap_add: add, compare: cmp };
        let mut buf = [0u8; AtomicEth::LEN];
        a.write(&mut buf).unwrap();
        prop_assert_eq!(AtomicEth::parse(&buf).unwrap(), a);

        let ack = AtomicAckEth { original_value: orig };
        let mut buf = [0u8; AtomicAckEth::LEN];
        ack.write(&mut buf).unwrap();
        prop_assert_eq!(AtomicAckEth::parse(&buf).unwrap(), ack);
    }

    #[test]
    fn aeth_roundtrip(msn in 0u32..0x0100_0000, pick in 0u8..6, low in 0u8..32) {
        let syndrome = match pick {
            0 => Syndrome::Ack { credits: low },
            1 => Syndrome::RnrNak { timer: low },
            2 => Syndrome::Nak(NakCode::PsnSequenceError),
            3 => Syndrome::Nak(NakCode::InvalidRequest),
            4 => Syndrome::Nak(NakCode::RemoteAccessError),
            _ => Syndrome::Nak(NakCode::RemoteOperationalError),
        };
        let a = Aeth { syndrome, msn };
        let mut buf = [0u8; Aeth::LEN];
        a.write(&mut buf).unwrap();
        prop_assert_eq!(Aeth::parse(&buf).unwrap(), a);
    }

    #[test]
    fn roce_write_roundtrip(
        src in arb_endpoint(),
        dst in arb_endpoint(),
        sport: u16,
        qpn in 0u32..0x0100_0000,
        psn in 0u32..0x0100_0000,
        va: u64,
        rkey: u32,
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let pkt = RocePacket::new(
            src,
            dst,
            sport,
            Bth::new(Opcode::WriteOnly, QpNum(qpn), psn),
            RoceExt::Reth(Reth { va, rkey: Rkey(rkey), dma_len: payload.len() as u32 }),
            payload,
        );
        let wire = pkt.build().unwrap();
        let parsed = RocePacket::parse(&wire).unwrap().expect("is roce");
        prop_assert_eq!(parsed.payload, pkt.payload);
        prop_assert_eq!(parsed.bth.psn, psn);
        prop_assert_eq!(parsed.bth.dest_qp, QpNum(qpn));
        prop_assert_eq!(parsed.ipv4.src, src.ip);
        prop_assert_eq!(parsed.eth.dst, dst.mac);
        prop_assert_eq!(parsed.ext, pkt.ext);
    }

    /// Flipping any single bit in the IP-and-beyond region must be caught
    /// by either the IPv4 checksum, the ICRC, or a structural check —
    /// unless the flipped field is one the ICRC deliberately excludes
    /// (ToS, TTL, checksums, resv8a) in which case parsing may still
    /// succeed.
    #[test]
    fn corruption_is_detected_or_in_mutable_field(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let src = RoceEndpoint { mac: MacAddr::local(1), ip: 0x0a000001 };
        let dst = RoceEndpoint { mac: MacAddr::local(2), ip: 0x0a000002 };
        let pkt = RocePacket::new(
            src,
            dst,
            0x9000,
            Bth::new(Opcode::WriteOnly, QpNum(5), 9),
            RoceExt::Reth(Reth { va: 64, rkey: Rkey(3), dma_len: payload.len() as u32 }),
            payload,
        );
        let wire = pkt.build().unwrap();
        let n = wire.len();
        // Corrupt somewhere in the IP..end region (Ethernet header is not
        // covered by any checksum — as on real wires, where the FCS we do
        // not model would catch it).
        let at = 14 + byte_sel.index(n - 14);
        let mut bytes = wire.into_vec();
        bytes[at] ^= 1 << bit;
        let mutable = matches!(at, 15 | 22 | 24 | 25 | 40 | 41 | 46); // ToS,TTL,IP csum,UDP csum,resv8a
        match RocePacket::parse(&Packet::from_vec(bytes)) {
            Err(_) => {} // detected: good
            Ok(None) => {} // no longer classified as RoCE (e.g. proto bit): fine
            Ok(Some(parsed)) => {
                prop_assert!(
                    mutable,
                    "undetected corruption at offset {} (not a mutable field)",
                    at
                );
                // Mutable-field flips must not corrupt the payload.
                prop_assert_eq!(parsed.payload, pkt.payload);
            }
        }
    }

    #[test]
    fn data_packet_roundtrip(
        flow_id: u32,
        seq: u32,
        len in MIN_DATA_FRAME..4096usize,
        sport: u16,
        dport in 1u16..4791,
    ) {
        let flow = extmem_types::FiveTuple::new(1, 2, sport, dport, 17);
        let pkt = build_data_packet(
            MacAddr::local(1),
            MacAddr::local(2),
            flow,
            flow_id,
            seq,
            extmem_types::Time::from_nanos(42),
            len,
        ).unwrap();
        prop_assert_eq!(pkt.len(), len);
        let info = parse_data_packet(&pkt).unwrap().expect("workload frame");
        prop_assert_eq!(info.data.flow_id, flow_id);
        prop_assert_eq!(info.data.seq, seq);
        prop_assert_eq!(info.five_tuple(), flow);
    }

    /// Serialize → corrupt an arbitrary set of bits anywhere in the frame
    /// (including the Ethernet header) → parse. Any outcome is acceptable
    /// except a panic.
    #[test]
    fn parse_never_panics_on_arbitrary_corruption(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..8),
        truncate in any::<prop::sample::Index>(),
    ) {
        let src = RoceEndpoint { mac: MacAddr::local(1), ip: 0x0a000001 };
        let dst = RoceEndpoint { mac: MacAddr::local(2), ip: 0x0a000002 };
        let pkt = RocePacket::new(
            src,
            dst,
            0x9000,
            Bth::new(Opcode::WriteOnly, QpNum(5), 9),
            RoceExt::Reth(Reth { va: 64, rkey: Rkey(3), dma_len: payload.len() as u32 }),
            payload,
        );
        let mut bytes = pkt.build().unwrap().into_vec();
        for (sel, bit) in flips {
            let at = sel.index(bytes.len());
            bytes[at] ^= 1 << bit;
        }
        // Also exercise truncated frames: drop an arbitrary-length tail.
        bytes.truncate(truncate.index(bytes.len() + 1));
        let _ = RocePacket::parse(&Packet::from_vec(bytes)); // must not panic
    }

    /// [`Payload::slice`] for any in-bounds window: correct length, correct
    /// bytes, shares (not copies) the parent's buffer, parent unaffected.
    #[test]
    fn payload_slice_window_invariants(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        use extmem_wire::Payload;
        let p = Payload::from_vec(data.clone());
        let (mut s, mut e) = (a.index(data.len() + 1), b.index(data.len() + 1));
        if s > e {
            std::mem::swap(&mut s, &mut e);
        }
        let w = p.slice(s..e);
        prop_assert_eq!(w.len(), e - s);
        prop_assert_eq!(w.as_slice(), &data[s..e]);
        prop_assert_eq!(p.as_slice(), &data[..], "parent view unchanged");
        if !w.is_empty() {
            prop_assert!(p.ref_count() >= 2, "non-empty windows share the buffer");
        }
    }

    /// Copy-on-write isolation: flipping any bit through one clone leaves
    /// every other holder's view untouched, and changes exactly that bit in
    /// the mutated clone.
    #[test]
    fn payload_cow_isolation(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        use extmem_wire::Payload;
        let p = Payload::from_vec(data.clone());
        let mut q = p.clone();
        let at = sel.index(data.len());
        q.make_mut()[at] ^= 1 << bit;
        prop_assert_eq!(&p, &data, "original holder's view mutated");
        prop_assert_eq!(q.len(), data.len());
        let diff: Vec<usize> =
            (0..data.len()).filter(|&i| q.as_slice()[i] != data[i]).collect();
        prop_assert_eq!(diff, vec![at]);
        prop_assert_eq!(q.as_slice()[at] ^ data[at], 1 << bit);
    }

    /// The slice-by-8 CRC must be bit-identical to the byte-at-a-time
    /// oracle for any data, any starting state, and any split point (the
    /// masked-prefix ICRC path feeds the CRC in two runs).
    #[test]
    fn slice_by_8_crc_matches_bytewise_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        state: u32,
        split in any::<prop::sample::Index>(),
    ) {
        use extmem_wire::icrc::{crc32_update, crc32_update_bytewise};
        prop_assert_eq!(crc32_update(state, &data), crc32_update_bytewise(state, &data));
        // Streaming in two arbitrary chunks must agree too (exercises the
        // scalar tail of the first run feeding the stride of the second).
        let at = split.index(data.len() + 1);
        let two_step = crc32_update(crc32_update(state, &data[..at]), &data[at..]);
        prop_assert_eq!(two_step, crc32_update_bytewise(state, &data));
    }

    /// The masked-prefix ICRC must equal the straightforward byte-at-a-time
    /// reference for arbitrary well-formed frames.
    #[test]
    fn icrc_fast_path_matches_bytewise_oracle(
        src in arb_endpoint(),
        dst in arb_endpoint(),
        sport: u16,
        qpn in 0u32..0x0100_0000,
        psn in 0u32..0x0100_0000,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        use extmem_wire::ethernet::EthernetHeader;
        use extmem_wire::icrc::{icrc_rocev2, icrc_rocev2_bytewise};
        let pkt = RocePacket::new(
            src,
            dst,
            sport,
            Bth::new(Opcode::WriteOnly, QpNum(qpn), psn),
            RoceExt::Reth(Reth { va: 64, rkey: Rkey(3), dma_len: payload.len() as u32 }),
            payload,
        );
        let wire = pkt.build().unwrap();
        let ip_and_later = &wire.as_slice()[EthernetHeader::LEN..wire.len() - 4];
        prop_assert_eq!(icrc_rocev2(ip_and_later), icrc_rocev2_bytewise(ip_and_later));
    }

    #[test]
    fn psn_serial_arithmetic_is_antisymmetric(a in 0u32..0x0100_0000, d in 1u32..0x0080_0000) {
        use extmem_wire::bth::{psn_add, psn_before};
        let b = psn_add(a, d);
        prop_assert!(psn_before(a, b));
        prop_assert!(!psn_before(b, a));
        prop_assert!(!psn_before(a, a));
    }

    /// `psn_add` is addition modulo 2^24: the result is always a valid
    /// 24-bit PSN and equals the plain modular sum, for any increments
    /// (including ones that themselves exceed the PSN space).
    #[test]
    fn psn_add_is_modular_24bit(a in 0u32..0x0100_0000, n: u32) {
        use extmem_wire::bth::psn_add;
        let r = psn_add(a, n);
        prop_assert!(r < 0x0100_0000, "result must stay 24-bit");
        prop_assert_eq!(u64::from(r), (u64::from(a) + u64::from(n)) % (1 << 24));
    }

    /// Advancing in two hops equals advancing once by the sum — the
    /// reliability layer relies on this when it splits a multi-packet READ
    /// into per-PSN bookkeeping.
    #[test]
    fn psn_add_composes(a in 0u32..0x0100_0000, m in 0u32..0x0080_0000, n in 0u32..0x0080_0000) {
        use extmem_wire::bth::psn_add;
        prop_assert_eq!(psn_add(psn_add(a, m), n), psn_add(a, m + n));
    }

    /// Against an unwrapped 64-bit oracle: for any two serial numbers on a
    /// long stream whose distance is within the comparison horizon (2^23),
    /// `psn_before` on the truncated 24-bit values agrees with plain `<`
    /// on the untruncated ones — no matter how many times the stream has
    /// wrapped.
    #[test]
    fn psn_before_matches_unwrapped_oracle(s: u64, d in 1u64..0x0080_0000) {
        use extmem_wire::bth::psn_before;
        let t = s + d;
        let (sp, tp) = ((s & 0x00ff_ffff) as u32, (t & 0x00ff_ffff) as u32);
        prop_assert!(psn_before(sp, tp));
        prop_assert!(!psn_before(tp, sp));
    }

    /// The retransmit-window model across the wrap: a window of `w` ops is
    /// outstanding starting at `base` (chosen so the window may straddle
    /// 0xffffff → 0x000000), the responder acks the first `k`. Every
    /// retired PSN must compare strictly before the new window head, the
    /// head must not compare before any still-outstanding PSN, and
    /// cumulative-ack retirement leaves exactly `w - k` outstanding.
    #[test]
    fn psn_window_retirement_across_wrap(
        off in 0u32..64,
        w in 1u32..48,
        kf in any::<prop::sample::Index>(),
    ) {
        use extmem_wire::bth::{psn_add, psn_before};
        // Place the window so it can straddle the 24-bit wrap point.
        let base = psn_add(0x00ff_ffe0, off);
        let k = kf.index(w as usize + 1) as u32;
        let head = psn_add(base, k);
        let mut outstanding = 0u32;
        for i in 0..w {
            let psn = psn_add(base, i);
            if psn_before(psn, head) {
                // Retired by the cumulative ack at `head`.
                prop_assert!(i < k, "retired an op past the ack point");
            } else {
                prop_assert!(i >= k, "ack at head={head:#x} skipped psn={psn:#x}");
                outstanding += 1;
            }
        }
        prop_assert_eq!(outstanding, w - k);
    }
}

/// Round-trip through the full packet codec for every remote-op opcode:
/// the four request formats (extension header + op-specific payload) and
/// the ExtOpResp response (AETH + ExtOpAckETH + data payload). Payloads
/// are generated consistent with their headers, as the requester builds
/// them.
mod extop_roundtrips {
    use extmem_types::{QpNum, Rkey};
    use extmem_wire::aeth::{Aeth, Syndrome};
    use extmem_wire::bth::{Bth, Opcode};
    use extmem_wire::extop::{
        CondWriteEth, ExtOpAckEth, GatherEth, HashProbeEth, IndirectEth, IndirectMode,
    };
    use extmem_wire::roce::{RoceEndpoint, RoceExt, RocePacket};
    use extmem_wire::MacAddr;
    use proptest::prelude::*;

    fn arb_ext_op() -> impl Strategy<Value = (Opcode, RoceExt, Vec<u8>)> {
        prop_oneof![
            (
                any::<u64>(),
                any::<u32>(),
                any::<bool>(),
                any::<u8>(),
                any::<u16>(),
                any::<u32>(),
            )
                .prop_map(|(va, rkey, lp, len_off, hdr_len, max_len)| (
                    Opcode::IndirectRead,
                    RoceExt::Indirect(IndirectEth {
                        va,
                        rkey: Rkey(rkey),
                        mode: if lp {
                            IndirectMode::LengthPrefixed
                        } else {
                            IndirectMode::Pointer
                        },
                        len_off,
                        hdr_len,
                        max_len,
                    }),
                    vec![],
                )),
            (
                (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()),
                (
                    any::<u16>(),
                    any::<u16>(),
                    any::<u8>(),
                    proptest::collection::vec(any::<u8>(), 1..33),
                ),
            )
                .prop_map(
                    |((base_va, rkey, b1, b2), (bucket_bytes, slot_bytes, key_off, key))| (
                        Opcode::HashProbe,
                        RoceExt::HashProbe(HashProbeEth {
                            base_va,
                            rkey: Rkey(rkey),
                            b1,
                            b2,
                            bucket_bytes,
                            slot_bytes,
                            key_off,
                            key_len: key.len() as u8,
                        }),
                        key,
                    )
                ),
            (
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                proptest::collection::vec(any::<u8>(), 1..33),
                proptest::collection::vec(any::<u8>(), 0..65),
            )
                .prop_map(|(cmp_va, write_va, rkey, compare, write)| {
                    let mut payload = compare.clone();
                    payload.extend_from_slice(&write);
                    (
                        Opcode::CondWrite,
                        RoceExt::CondWrite(CondWriteEth {
                            cmp_va,
                            write_va,
                            rkey: Rkey(rkey),
                            cmp_len: compare.len() as u16,
                        }),
                        payload,
                    )
                }),
            (
                any::<u32>(),
                any::<u16>(),
                proptest::collection::vec(any::<u64>(), 1..17),
            )
                .prop_map(|(rkey, word_len, vas)| {
                    let mut payload = Vec::with_capacity(vas.len() * 8);
                    for va in &vas {
                        payload.extend_from_slice(&va.to_be_bytes());
                    }
                    (
                        Opcode::GatherWalk,
                        RoceExt::Gather(GatherEth {
                            rkey: Rkey(rkey),
                            word_len,
                            count: vas.len() as u16,
                        }),
                        payload,
                    )
                }),
            (
                0u32..0x0100_0000,
                0u8..32,
                prop::sample::select(vec![0xc0u8, 0xc1, 0xc2, 0xc3]),
                any::<u8>(),
                any::<u16>(),
                proptest::collection::vec(any::<u8>(), 0..256),
            )
                .prop_map(|(msn, credits, op, flags, index, data)| (
                    Opcode::ExtOpResp,
                    RoceExt::ExtOpAck(
                        Aeth {
                            syndrome: Syndrome::Ack { credits },
                            msn,
                        },
                        ExtOpAckEth {
                            op,
                            flags: flags & 0x03,
                            index,
                        },
                    ),
                    data,
                )),
        ]
    }

    proptest! {
        #[test]
        fn ext_op_packet_roundtrip(
            (op, ext, payload) in arb_ext_op(),
            qpn in 0u32..0x0100_0000,
            psn in 0u32..0x0100_0000,
            sport: u16,
        ) {
            let src = RoceEndpoint { mac: MacAddr::local(1), ip: 0x0a000001 };
            let dst = RoceEndpoint { mac: MacAddr::local(2), ip: 0x0a000002 };
            let pkt = RocePacket::new(
                src,
                dst,
                sport,
                Bth::new(op, QpNum(qpn), psn),
                ext,
                payload,
            );
            let wire = pkt.build().unwrap();
            let parsed = RocePacket::parse(&wire).unwrap().expect("is roce");
            prop_assert_eq!(parsed.bth.opcode, op);
            prop_assert_eq!(parsed.bth.psn, psn);
            prop_assert_eq!(parsed.bth.dest_qp, QpNum(qpn));
            prop_assert_eq!(parsed.ext, pkt.ext);
            prop_assert_eq!(parsed.payload, pkt.payload);
        }
    }
}
