//! Cross-crate integration tests: full scenarios through real topologies.

use extmem_apps::baremetal::{run_dscp_lookup, run_gateway, run_l2_baseline, GatewayConfig};
use extmem_apps::incast::{run_incast, IncastConfig, RemoteBufferSpec};
use extmem_apps::telemetry::{run_counting, run_sketch, CountingConfig};
use extmem_apps::workload::FlowPick;
use extmem_core::sketch::{SketchGeometry, SketchKind};
use extmem_types::{Rate, TimeDelta};

#[test]
fn incast_baseline_matches_paper_arithmetic() {
    // §2.1: with an 8:1 incast at 40G the 12MB buffer fills in ~0.34 ms.
    // At small scale the same shape holds: buffer ≪ burst ⇒ drops ≈
    // burst − buffer − drain·completion.
    let mut cfg = IncastConfig::small(None);
    cfg.switch_buffer = extmem_types::ByteSize::from_bytes(120_000);
    let r = run_incast(cfg);
    assert!(r.delivery_ratio < 0.7, "expected heavy loss: {r:?}");
    assert_eq!(r.delivered + r.tm_drops, r.sent);
    // The peak buffer must be pinned at (close to) the configured cap.
    assert!(r.peak_buffer > 100_000, "buffer never filled: {r:?}");
}

#[test]
fn incast_with_remote_buffer_is_lossless_and_ordered() {
    let r = run_incast(IncastConfig::small(Some(RemoteBufferSpec::default())));
    assert_eq!(r.delivered, r.sent);
    assert_eq!(r.tm_drops, 0);
    assert_eq!(r.reorders, 0);
    assert_eq!(r.pb.lost_entries, 0);
    assert_eq!(r.pb.stale_skipped, 0);
    // The local buffer stayed tiny: that's the point of the primitive.
    assert!(
        r.peak_buffer < 120_000,
        "local buffer should stay below the detour threshold region: {r:?}"
    );
}

#[test]
fn lookup_latency_overhead_matches_fig3a_shape() {
    // Fig 3a: the lookup primitive adds 1–2 us over the L2 baseline across
    // packet sizes, and the overhead grows gently with size (two extra
    // serializations of the bounced packet).
    let mut overheads = Vec::new();
    for &size in &[64usize, 256, 1024] {
        let base = run_l2_baseline(size, 300, Rate::from_gbps(1), 5);
        let (with, stats) = run_dscp_lookup(size, 300, Rate::from_gbps(1), None, 5);
        assert_eq!(stats.remote_lookups, 300);
        assert_eq!(stats.naks, 0);
        overheads.push(with.median.as_micros_f64() - base.median.as_micros_f64());
    }
    for &o in &overheads {
        assert!(
            (0.5..5.0).contains(&o),
            "overhead {o}us out of the paper regime"
        );
    }
    assert!(
        overheads.windows(2).all(|w| w[0] <= w[1] + 0.05),
        "overhead should grow (weakly) with packet size: {overheads:?}"
    );
}

#[test]
fn statestore_accuracy_and_goodput_match_fig3b_claims() {
    let r = run_counting(CountingConfig {
        count: 5_000,
        offered: Rate::from_gbps(30),
        frame_len: 512,
        settle: TimeDelta::from_millis(3),
        ..Default::default()
    });
    // "the updated value is 100% accurate"
    assert_eq!(r.remote_total, r.truth_total);
    assert_eq!(r.exact_slots, r.truth_slots);
    // "no end-to-end throughput degradation"
    assert!(
        r.goodput.gbps_f64() > 29.0,
        "goodput {} below offered",
        r.goodput
    );
    // zero CPU involvement
    assert_eq!(r.server_cpu_packets, 0);
}

#[test]
fn gateway_translates_under_heavy_skew_with_tiny_cache() {
    let r = run_gateway(GatewayConfig {
        n_vips: 256,
        pick: FlowPick::Zipf(1.4),
        count: 5_000,
        cache: Some(16),
        ..Default::default()
    });
    assert_eq!(r.delivered, r.sent);
    assert!(r.cache_hit_rate > 0.6, "hit rate {}", r.cache_hit_rate);
    assert_eq!(r.lookup.slow_path, 0);
}

#[test]
fn sketches_detect_heavy_hitters_end_to_end() {
    let g = SketchGeometry {
        rows: 5,
        cols: 1024,
    };
    for kind in [SketchKind::CountMin, SketchKind::CountSketch] {
        let r = run_sketch(kind, g, 48, 4_000, 250, 17);
        assert!(
            r.heavy_hitters.contains(&0),
            "{kind:?} missed the Zipf head: {:?}",
            r.heavy_hitters
        );
        // No mice (tail half of the rank distribution) should appear.
        for &hh in &r.heavy_hitters {
            assert!(hh < 24, "{kind:?} flagged mouse flow {hh}");
        }
    }
}

#[test]
fn counting_exactness_across_issuing_configs() {
    use extmem_core::faa::FaaConfig;
    for (window, batch) in [(1usize, 1u64), (2, 8), (16, 2)] {
        let r = run_counting(CountingConfig {
            count: 2_000,
            faa: FaaConfig {
                max_outstanding: window,
                min_batch: batch,
                ..Default::default()
            },
            settle: TimeDelta::from_millis(5),
            seed: window as u64 * 100 + batch,
            ..Default::default()
        });
        assert_eq!(
            r.remote_total, r.truth_total,
            "window={window} batch={batch} lost counts"
        );
    }
}

/// The complete §2.1 story: the remote packet buffer absorbs the *transient*
/// part of an overload while ECN-based end-to-end congestion control slows
/// the *persistent* part — "in the case of persistent congestion, end-to-end
/// congestion control based on ECN … should have slowed traffic".
#[test]
fn remote_buffer_plus_ecn_tames_persistent_congestion() {
    use extmem_apps::cc::{DctcpConfig, DctcpSource, FeedbackEcho};
    use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
    use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
    use extmem_core::{Fib, RdmaChannel};
    use extmem_rnic::{RnicConfig, RnicNode};
    use extmem_sim::{LinkSpec, SimBuilder};
    use extmem_switch::{SwitchConfig, SwitchNode};
    use extmem_types::{ByteSize, FiveTuple, PortId, Time, TimeDelta};

    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(8));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 8_192,
            resume_load_qbytes: 4_096,
        },
        8,
        TimeDelta::from_micros(100),
    );
    let mut b = SimBuilder::new(23);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig {
            ecn_threshold: Some(ByteSize::from_bytes(4_096)),
            ..Default::default()
        },
        Box::new(prog),
    )));
    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17);
    let src = b.add_node(Box::new(DctcpSource::new(
        "dctcp",
        // A persistent 2.5x overload of the 10G bottleneck. (Staying under
        // the ~30G NIC write ceiling for 1000B frames keeps the detour
        // itself lossless; E1/E4 cover what happens beyond it.)
        DctcpConfig {
            initial: Rate::from_gbps(25),
            max: Rate::from_gbps(25),
            ..Default::default()
        },
        host_mac(0),
        host_mac(1),
        flow,
        1000,
        60_000,
    )));
    let dst = b.add_node(Box::new(FeedbackEcho::new("rx")));
    b.connect(switch, PortId(0), src, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        dst,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server = b.add_node(Box::new(nic));
    b.connect(
        switch,
        PortId(2),
        server,
        PortId(0),
        LinkSpec::testbed_40g(),
    );
    let mut sim = b.build();
    sim.schedule_timer(src, TimeDelta::ZERO, 1);
    sim.run_until(Time::from_millis(40));

    let sw: &SwitchNode = sim.node(switch);
    let s = sw.program::<PacketBufferProgram>().stats();
    let src_node = sim.node::<DctcpSource>(src);
    let rx = sim.node::<FeedbackEcho>(dst);

    // The transient was absorbed remotely, not dropped.
    assert!(s.stored > 0, "detour never engaged: {s:?}");
    assert_eq!(sw.tm().total_drops(), 0, "nothing may drop: {s:?}");
    assert_eq!(
        sim.node::<RnicNode>(server).stats().rx_overflow_drops,
        0,
        "the NIC must keep up below its ceiling"
    );
    assert_eq!(s.lost_entries, 0);
    // The persistent part was slowed by ECN toward the bottleneck.
    let tail = &src_node.rate_trace[src_node.rate_trace.len() * 3 / 4..];
    let avg: f64 = tail.iter().map(|(_, r)| r.gbps_f64()).sum::<f64>() / tail.len() as f64;
    assert!(
        (6.0..14.0).contains(&avg),
        "rate did not converge near 10G: {avg:.1}G"
    );
    // Once the sender slowed, the ring drained back to (near) empty.
    let prog = sw.program::<PacketBufferProgram>();
    assert!(
        prog.ring_occupancy() < 64,
        "ring should drain under steady state: {} entries",
        prog.ring_occupancy()
    );
    // Feedback kept flowing throughout.
    assert!(rx.received > 10_000, "receiver starved: {}", rx.received);
    assert!(src_node.total_feedback > 10_000, "feedback loop starved");
}
