//! Robustness properties: parsers never panic on arbitrary bytes, the
//! event queue is a total order, and the arithmetic types round-trip.

use extmem_types::{Rate, Time, TimeDelta};
use extmem_wire::payload::parse_data_packet;
use extmem_wire::{Packet, RocePacket};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes must never panic the RoCE parser — at worst they are
    /// "not RoCE" or an error.
    #[test]
    fn roce_parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RocePacket::parse(&Packet::from_vec(bytes));
    }

    /// Same for the workload-frame parser.
    #[test]
    fn data_parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_data_packet(&Packet::from_vec(bytes));
    }

    /// Mutating any prefix of a valid RoCE frame still never panics.
    #[test]
    fn roce_parser_total_on_truncations(cut in 0usize..134) {
        use extmem_types::{QpNum, Rkey};
        use extmem_wire::bth::{Bth, Opcode};
        use extmem_wire::reth::Reth;
        use extmem_wire::roce::{RoceEndpoint, RoceExt};
        use extmem_wire::MacAddr;
        let src = RoceEndpoint { mac: MacAddr::local(1), ip: 1 };
        let dst = RoceEndpoint { mac: MacAddr::local(2), ip: 2 };
        let full = RocePacket::new(
            src,
            dst,
            9,
            Bth::new(Opcode::WriteOnly, QpNum(3), 4),
            RoceExt::Reth(Reth { va: 0, rkey: Rkey(1), dma_len: 60 }),
            vec![7u8; 60],
        )
        .build()
        .unwrap();
        let cut = cut.min(full.len());
        let truncated = Packet::from_vec(full.as_slice()[..cut].to_vec());
        let _ = RocePacket::parse(&truncated);
    }

    /// Rate arithmetic: `bytes_in(time_to_send(n)) == n` for any positive
    /// rate and size (time_to_send rounds up, so the inverse can only
    /// overshoot by the sub-picosecond remainder — i.e. never undershoot).
    #[test]
    fn rate_send_time_inverts(bps in 1_000u64..1_000_000_000_000, bytes in 1usize..1_000_000) {
        let r = Rate::from_bps(bps);
        let t = r.time_to_send(bytes);
        let back = r.bytes_in(t);
        prop_assert!(back >= bytes as u64, "{back} < {bytes}");
        // Overshoot is bounded by the bytes one picosecond carries, plus one.
        let slack = bps / 8 / 1_000_000_000_000 + 1;
        prop_assert!(back - bytes as u64 <= slack, "overshoot {} > {slack}", back - bytes as u64);
    }

    /// Time arithmetic is associative with deltas and display never panics.
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let t = Time::from_picos(a);
        let d1 = TimeDelta::from_picos(b);
        let d2 = TimeDelta::from_picos(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!((t + d1) - t, d1);
        let _ = format!("{t} {d1}");
    }
}

/// The event queue pops in exact `(time, insertion)` order for arbitrary
/// schedules (this drives the whole simulator's determinism).
#[test]
fn event_queue_total_order() {
    use extmem_sim::event::{EventKind, EventQueue};
    use extmem_types::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(99);
    let mut q = EventQueue::new();
    let mut expected: Vec<(u64, u64)> = Vec::new(); // (time, seq)
    for seq in 0..5_000u64 {
        let t = rng.gen_range(0..500u64);
        q.push(
            Time::from_picos(t),
            EventKind::Timer {
                node: NodeId(0),
                token: seq,
            },
        );
        expected.push((t, seq));
    }
    expected.sort();
    for (want_t, want_seq) in expected {
        let got = q.pop().unwrap();
        assert_eq!(got.at.picos(), want_t);
        match got.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, want_seq),
            _ => unreachable!(),
        }
    }
    assert!(q.pop().is_none());
}

// ---------------------------------------------------------------------------
// Health detector (PR 5): the pool's failure detector is a pure state
// machine, so its safety properties can be checked over arbitrary
// observation sequences.
// ---------------------------------------------------------------------------

/// One observation fed to a [`extmem_core::HealthDetector`].
#[derive(Clone, Copy, Debug)]
enum Obs {
    Timeout,
    Ack,
    ChannelFailed,
    ProbeSuccess,
    RejoinComplete,
    RejoinAborted,
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    // Weighted by bucket: timeouts and ACKs dominate real traces; the rare
    // events still get enough weight to compose full recovery cycles.
    (0u8..14).prop_map(|n| match n {
        0..=4 => Obs::Timeout,
        5..=9 => Obs::Ack,
        10 => Obs::ChannelFailed,
        11 => Obs::ProbeSuccess,
        12 => Obs::RejoinComplete,
        _ => Obs::RejoinAborted,
    })
}

proptest! {
    /// Safety: the detector never declares `Down` on timeouts alone unless
    /// `threshold` *consecutive* timeouts occurred — a single ACK anywhere
    /// in the window resets the count. (`ChannelFailed` is the explicit
    /// exception: the reliability layer already exhausted its retries.)
    #[test]
    fn detector_never_down_below_threshold(
        threshold in 1u32..8,
        trace in proptest::collection::vec(obs_strategy(), 0..200),
    ) {
        use extmem_core::{Health, HealthDetector};
        let mut d = HealthDetector::new(threshold);
        let mut consecutive = 0u32;
        let mut forced = false;
        for ob in trace {
            let before = d.state();
            match ob {
                Obs::Timeout => {
                    d.on_timeout();
                    consecutive += 1;
                }
                Obs::Ack => {
                    d.on_ack();
                    consecutive = 0;
                    forced = false;
                }
                Obs::ChannelFailed => {
                    d.on_channel_failed();
                    forced = true;
                }
                Obs::ProbeSuccess => d.on_probe_success(),
                Obs::RejoinComplete => {
                    d.on_rejoin_complete();
                    if d.state() == Health::Healthy {
                        consecutive = 0;
                        forced = false;
                    }
                }
                Obs::RejoinAborted => d.on_rejoin_aborted(),
            }
            // A fresh transition into Down must be justified: either the
            // channel gave up explicitly, or `threshold` consecutive
            // timeouts accumulated with no ACK in between.
            if d.state() == Health::Down && before != Health::Down && before != Health::Rejoining {
                prop_assert!(
                    forced || consecutive >= threshold,
                    "Down after {consecutive} consecutive timeouts (threshold {threshold})"
                );
            }
        }
    }

    /// Safety: `Rejoining` is only ever entered from `Down` (a probe
    /// answered), and only `on_probe_success` performs that transition.
    #[test]
    fn detector_rejoining_only_from_down(
        threshold in 1u32..8,
        trace in proptest::collection::vec(obs_strategy(), 0..200),
    ) {
        use extmem_core::{Health, HealthDetector};
        let mut d = HealthDetector::new(threshold);
        for ob in trace {
            let before = d.state();
            match ob {
                Obs::Timeout => d.on_timeout(),
                Obs::Ack => d.on_ack(),
                Obs::ChannelFailed => d.on_channel_failed(),
                Obs::ProbeSuccess => d.on_probe_success(),
                Obs::RejoinComplete => d.on_rejoin_complete(),
                Obs::RejoinAborted => d.on_rejoin_aborted(),
            }
            if d.state() == Health::Rejoining && before != Health::Rejoining {
                prop_assert_eq!(before, Health::Down, "entered Rejoining from {:?}", before);
                prop_assert!(matches!(ob, Obs::ProbeSuccess), "entered Rejoining via {ob:?}");
            }
        }
    }

    /// The recovery PSN jump clears any plausible outstanding window: for
    /// any starting PSN and any window of up to 512 consecutive ops, the
    /// recovered PSN (`npsn + 2^20` in 24-bit arithmetic) never lands
    /// inside the span a straggler response from the old incarnation could
    /// occupy, so late responses can never alias into the fresh window.
    #[test]
    fn recovery_psn_jump_clears_outstanding_window(
        base in 0u32..(1 << 24),
        window in 1u32..512,
    ) {
        use extmem_wire::bth::psn_add;
        let fresh = psn_add(base, 1 << 20);
        for off in 0..window {
            // Old-incarnation PSNs run backwards from npsn-1 over the window.
            let old = psn_add(base, (1 << 24) - 1 - off);
            prop_assert_ne!(fresh, old, "jump aliases old window at offset {}", off);
        }
    }
}
