//! Robustness properties: parsers never panic on arbitrary bytes, the
//! event queue is a total order, and the arithmetic types round-trip.

use extmem_types::{Rate, Time, TimeDelta};
use extmem_wire::payload::parse_data_packet;
use extmem_wire::{Packet, RocePacket};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes must never panic the RoCE parser — at worst they are
    /// "not RoCE" or an error.
    #[test]
    fn roce_parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RocePacket::parse(&Packet::from_vec(bytes));
    }

    /// Same for the workload-frame parser.
    #[test]
    fn data_parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_data_packet(&Packet::from_vec(bytes));
    }

    /// Mutating any prefix of a valid RoCE frame still never panics.
    #[test]
    fn roce_parser_total_on_truncations(cut in 0usize..134) {
        use extmem_types::{QpNum, Rkey};
        use extmem_wire::bth::{Bth, Opcode};
        use extmem_wire::reth::Reth;
        use extmem_wire::roce::{RoceEndpoint, RoceExt};
        use extmem_wire::MacAddr;
        let src = RoceEndpoint { mac: MacAddr::local(1), ip: 1 };
        let dst = RoceEndpoint { mac: MacAddr::local(2), ip: 2 };
        let full = RocePacket::new(
            src,
            dst,
            9,
            Bth::new(Opcode::WriteOnly, QpNum(3), 4),
            RoceExt::Reth(Reth { va: 0, rkey: Rkey(1), dma_len: 60 }),
            vec![7u8; 60],
        )
        .build()
        .unwrap();
        let cut = cut.min(full.len());
        let truncated = Packet::from_vec(full.as_slice()[..cut].to_vec());
        let _ = RocePacket::parse(&truncated);
    }

    /// Rate arithmetic: `bytes_in(time_to_send(n)) == n` for any positive
    /// rate and size (time_to_send rounds up, so the inverse can only
    /// overshoot by the sub-picosecond remainder — i.e. never undershoot).
    #[test]
    fn rate_send_time_inverts(bps in 1_000u64..1_000_000_000_000, bytes in 1usize..1_000_000) {
        let r = Rate::from_bps(bps);
        let t = r.time_to_send(bytes);
        let back = r.bytes_in(t);
        prop_assert!(back >= bytes as u64, "{back} < {bytes}");
        // Overshoot is bounded by the bytes one picosecond carries, plus one.
        let slack = bps / 8 / 1_000_000_000_000 + 1;
        prop_assert!(back - bytes as u64 <= slack, "overshoot {} > {slack}", back - bytes as u64);
    }

    /// Time arithmetic is associative with deltas and display never panics.
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let t = Time::from_picos(a);
        let d1 = TimeDelta::from_picos(b);
        let d2 = TimeDelta::from_picos(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!((t + d1) - t, d1);
        let _ = format!("{t} {d1}");
    }
}

/// The event queue pops in exact `(time, insertion)` order for arbitrary
/// schedules (this drives the whole simulator's determinism).
#[test]
fn event_queue_total_order() {
    use extmem_sim::event::{EventKind, EventQueue};
    use extmem_types::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(99);
    let mut q = EventQueue::new();
    let mut expected: Vec<(u64, u64)> = Vec::new(); // (time, seq)
    for seq in 0..5_000u64 {
        let t = rng.gen_range(0..500u64);
        q.push(
            Time::from_picos(t),
            EventKind::Timer {
                node: NodeId(0),
                token: seq,
            },
        );
        expected.push((t, seq));
    }
    expected.sort();
    for (want_t, want_seq) in expected {
        let got = q.pop().unwrap();
        assert_eq!(got.at.picos(), want_t);
        match got.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, want_seq),
            _ => unreachable!(),
        }
    }
    assert!(q.pop().is_none());
}
