//! Fault-injection integration tests: the §7 "RDMA packet drops"
//! discussion, exercised end to end.
//!
//! * reliable packet buffer: lost RDMA packets are retransmitted — exact
//!   recovery, no duplicates, no reordering, no wedge,
//! * best-effort state store: drops cause undercount,
//! * reliable state store (§7 extension): exact counts despite loss,
//! * corruption: bad ICRC frames die at the NIC, never reach memory.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{FaultSpec, LinkSpec, SimBuilder, Simulator};
use extmem_types::{ByteSize, FiveTuple, NodeId, PortId, Rate, Time, TimeDelta};

struct LossyRig {
    sim: Simulator,
    sink: NodeId,
    switch: NodeId,
    server: NodeId,
}

fn lossy_counting_rig(faa: FaaConfig, faults: FaultSpec, seed: u64) -> (LossyRig, u64, u64) {
    let counters = 256u64;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey.raw() as u64;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(channel, faa);
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(extmem_switch::SwitchNode::new(
        "tor",
        extmem_switch::SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(10),
            600,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = faults;
    b.connect(switch, PortId(2), server, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    (
        LossyRig {
            sim,
            sink,
            switch,
            server,
        },
        rkey,
        base,
    )
}

#[test]
fn reliable_statestore_is_exact_under_drops() {
    let (mut rig, rkey, base) = lossy_counting_rig(
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        },
        FaultSpec {
            drop_prob: 0.05,
            corrupt_prob: 0.0,
            ..FaultSpec::NONE
        },
        404,
    );
    rig.sim.run_until(Time::from_millis(30));
    let sw: &extmem_switch::SwitchNode = rig.sim.node(rig.switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(s.retransmits > 0, "expected recovery activity: {s:?}");
    assert!(prog.is_quiescent(), "must settle: {s:?}");
    let nic = rig.sim.node::<RnicNode>(rig.server);
    let remote: u64 = read_remote_counters(nic, extmem_types::Rkey(rkey as u32), base, 256)
        .iter()
        .sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote, truth, "reliable mode must be exact");
    // Forwarding untouched by the telemetry channel loss.
    assert_eq!(rig.sim.node::<SinkNode>(rig.sink).received, 600);
}

#[test]
fn best_effort_statestore_undercounts_under_drops() {
    let (mut rig, rkey, base) = lossy_counting_rig(
        FaaConfig::default(),
        FaultSpec {
            drop_prob: 0.08,
            corrupt_prob: 0.0,
            ..FaultSpec::NONE
        },
        405,
    );
    rig.sim.run_until(Time::from_millis(30));
    let sw: &extmem_switch::SwitchNode = rig.sim.node(rig.switch);
    let prog = sw.program::<StateStoreProgram>();
    let nic = rig.sim.node::<RnicNode>(rig.server);
    let remote: u64 = read_remote_counters(nic, extmem_types::Rkey(rkey as u32), base, 256)
        .iter()
        .sum();
    let truth: u64 = prog.oracle.values().sum();
    assert!(
        remote < truth,
        "8% loss must undercount (remote {remote} vs truth {truth})"
    );
    assert!(prog.faa_stats().lost_updates > 0 || prog.faa_stats().naks > 0);
}

#[test]
fn best_effort_statestore_never_wedges_under_heavy_loss() {
    // Regression: lost AtomicAcks used to pin the outstanding window shut.
    // The RTO-based aging must keep the engine flowing and eventually
    // quiescent even at 20% loss.
    let (mut rig, _rkey, _base) = lossy_counting_rig(
        FaaConfig {
            rto: TimeDelta::from_micros(60),
            ..Default::default()
        },
        FaultSpec {
            drop_prob: 0.2,
            corrupt_prob: 0.0,
            ..FaultSpec::NONE
        },
        407,
    );
    rig.sim.run_until(Time::from_millis(40));
    let sw: &extmem_switch::SwitchNode = rig.sim.node(rig.switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(
        prog.is_quiescent(),
        "engine wedged: in_transit={} stats={s:?}",
        prog.in_transit()
    );
    assert!(s.lost_updates > 0, "20% loss must lose something: {s:?}");
    // Forwarding untouched.
    assert_eq!(rig.sim.node::<SinkNode>(rig.sink).received, 600);
}

#[test]
fn corruption_dies_at_the_nic() {
    let (mut rig, rkey, base) = lossy_counting_rig(
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        },
        FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 0.05,
            ..FaultSpec::NONE
        },
        406,
    );
    rig.sim.run_until(Time::from_millis(30));
    let nic = rig.sim.node::<RnicNode>(rig.server);
    assert!(
        nic.stats().malformed_drops > 0,
        "corruption should hit the ICRC"
    );
    assert_eq!(
        nic.stats().cpu_packets,
        0,
        "corrupt frames must not punt to the CPU"
    );
    // Reliability recovers the corrupted requests too.
    let sw: &extmem_switch::SwitchNode = rig.sim.node(rig.switch);
    let prog = sw.program::<StateStoreProgram>();
    let remote: u64 = read_remote_counters(nic, extmem_types::Rkey(rkey as u32), base, 256)
        .iter()
        .sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote, truth, "reliable mode must absorb corruption");
}

#[test]
fn packet_buffer_never_duplicates_or_reorders_under_loss() {
    for seed in [1u64, 77, 901] {
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
        let channel =
            RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(2));
        let mut fib = Fib::new(8);
        fib.install(host_mac(0), PortId(0));
        fib.install(host_mac(1), PortId(1));
        let prog = PacketBufferProgram::new(
            fib,
            vec![channel],
            PortId(1),
            2048,
            Mode::Auto {
                start_store_qbytes: 4096,
                resume_load_qbytes: 2048,
            },
            8,
            TimeDelta::from_micros(50),
        );
        let mut b = SimBuilder::new(seed);
        let switch = b.add_node(Box::new(extmem_switch::SwitchNode::new(
            "tor",
            extmem_switch::SwitchConfig::default(),
            Box::new(prog),
        )));
        let gen = b.add_node(Box::new(TrafficGenNode::new(
            "gen",
            WorkloadSpec::simple(
                host_mac(0),
                host_mac(1),
                FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
                800,
                Rate::from_gbps(30),
                400,
            ),
        )));
        let sink = b.add_node(Box::new(SinkNode::new("sink")));
        b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
        b.connect(
            switch,
            PortId(1),
            sink,
            PortId(0),
            LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
        );
        let server = b.add_node(Box::new(nic));
        let mut lossy = LinkSpec::testbed_40g();
        lossy.faults = FaultSpec {
            drop_prob: 0.04,
            corrupt_prob: 0.02,
            ..FaultSpec::NONE
        };
        b.connect(switch, PortId(2), server, PortId(0), lossy);
        let mut sim = b.build();
        sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        sim.run_until(Time::from_millis(50));

        let sink = sim.node::<SinkNode>(sink);
        assert_eq!(
            sink.corrupt, 0,
            "seed {seed}: corrupted payload leaked through"
        );
        assert_eq!(sink.total_reorders(), 0, "seed {seed}: order violated");
        assert!(
            sink.received > 200,
            "seed {seed}: channel collapsed ({})",
            sink.received
        );
        let sw: &extmem_switch::SwitchNode = sim.node(switch);
        let s = sw.program::<PacketBufferProgram>().stats();
        assert_eq!(
            s.lost_entries, 0,
            "seed {seed}: reliable channel must lose nothing: {s:?}"
        );
        assert_eq!(s.loaded, s.stored, "seed {seed}: entries unaccounted: {s:?}");
    }
}

#[test]
fn server_outage_and_recovery_with_reliable_statestore() {
    // §7 "handling switch and server failures": the memory server goes dark
    // for 2ms mid-run. Reliable mode keeps retransmitting; once the server
    // recovers, every count lands and the store is exact again.
    let counters = 128u64;
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            outage: Some((Time::from_millis(1), Time::from_millis(3))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(
        channel,
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(100),
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(50));

    let mut b = SimBuilder::new(777);
    let switch = b.add_node(Box::new(extmem_switch::SwitchNode::new(
        "tor",
        extmem_switch::SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            2_000, // spans the outage: 2000 * 256B @ 2G = ~2ms of traffic
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), server, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);

    // During the outage, the remote store is frozen while truth advances.
    sim.run_until(Time::from_micros(2_500));
    {
        let sw: &extmem_switch::SwitchNode = sim.node(switch);
        let prog = sw.program::<StateStoreProgram>();
        let nic = sim.node::<RnicNode>(server);
        assert!(nic.stats().outage_drops > 0, "outage never bit");
        let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
        let truth: u64 = prog.oracle.values().sum();
        assert!(remote < truth, "store should lag during the outage");
    }

    // After recovery + retransmissions, exactness is restored.
    sim.run_until(Time::from_millis(30));
    let sw: &extmem_switch::SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(s.retransmits > 0, "recovery must retransmit: {s:?}");
    assert!(prog.is_quiescent(), "must settle after recovery: {s:?}");
    let nic = sim.node::<RnicNode>(server);
    let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(
        remote, truth,
        "counts must converge after the server returns"
    );
    // Forwarding was never disturbed by the telemetry outage.
    assert_eq!(sim.node::<SinkNode>(sink).received, 2_000);
}

#[test]
fn server_outage_packet_buffer_recovers_exactly() {
    // A short outage (well inside the retry budget) is invisible to the
    // payload stream: the reliable channel retransmits what was in flight
    // and every detoured packet is eventually released in order.
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            outage: Some((Time::from_micros(200), Time::from_micros(600))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(2));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 4096,
            resume_load_qbytes: 2048,
        },
        8,
        TimeDelta::from_micros(50),
    );
    let mut b = SimBuilder::new(778);
    let switch = b.add_node(Box::new(extmem_switch::SwitchNode::new(
        "tor",
        extmem_switch::SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            800,
            Rate::from_gbps(30),
            600,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        sink,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server = b.add_node(Box::new(nic));
    b.connect(
        switch,
        PortId(2),
        server,
        PortId(0),
        LinkSpec::testbed_40g(),
    );
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(60));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &extmem_switch::SwitchNode = sim.node(switch);
    let s = sw.program::<PacketBufferProgram>().stats();
    let nic = sim.node::<RnicNode>(server);
    assert!(nic.stats().outage_drops > 0, "outage never bit");
    assert!(s.channel.retransmits > 0, "recovery must retransmit: {s:?}");
    assert!(!s.channel.failed_over, "short outage must not fail over: {s:?}");
    assert_eq!(s.lost_entries, 0, "reliable channel must lose nothing: {s:?}");
    assert_eq!(s.loaded, s.stored, "entries unaccounted: {s:?}");
    assert_eq!(sink.total_reorders(), 0);
    assert_eq!(sink.received, 600, "every packet must be delivered");
}
