//! The fault matrix: every remote-memory primitive driven through
//! {0, 0.1%, 1% loss} × {no outage, mid-run outage} × {in-order, reordered}
//! and held to *exact* settled invariants — counters exact, ring released
//! strictly in order, no stuck windows, no leaked outstanding ops. The
//! reliability layer (`ReliableChannel`) must make loss invisible, not
//! merely survivable.
//!
//! Also here:
//! * failover: past the retry cap each primitive degrades to local-only
//!   operation without deadlock (§7 graceful degradation),
//! * PSN wrap-around: reliability bookkeeping stays correct across the
//!   24-bit wrap, including retransmissions spanning the wrap,
//! * a source guard that the old copy-pasted `npsn = roce.bth.psn` resync
//!   hack never reappears in `crates/core`.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{Arrival, FlowPick, FlowSet, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::cuckoo::{CuckooConfig, CuckooDirectory};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::lookup::{
    install_cuckoo_image, install_remote_action, ActionEntry, ChurnScript, ControlOp,
    LookupTableProgram, TOKEN_CHURN,
};
use extmem_core::lpm::{install_remote_route, slots_per_level, RemoteLpmProgram};
use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
use extmem_core::shard::ShardedStateStoreProgram;
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, RdmaChannel, ReliableConfig};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{FaultSpec, LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

/// One cell of the fault matrix.
#[derive(Clone, Copy, Debug)]
struct Cell {
    /// Per-packet drop probability on the memory-server link.
    loss: f64,
    /// Whether the memory server goes dark for a mid-run window (shorter
    /// than the retry budget, so the channel must recover, not fail over).
    outage: bool,
    /// Whether packets on the memory-server link are randomly held back so
    /// later ones overtake them.
    reorder: bool,
}

/// The full {loss} × {outage} × {reorder} grid.
fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &loss in &[0.0, 0.001, 0.01] {
        for &outage in &[false, true] {
            for &reorder in &[false, true] {
                cells.push(Cell {
                    loss,
                    outage,
                    reorder,
                });
            }
        }
    }
    cells
}

/// The harshest cell, used by the CI smoke tests.
fn worst_cell() -> Cell {
    Cell {
        loss: 0.01,
        outage: true,
        reorder: true,
    }
}

fn cell_faults(cell: &Cell) -> FaultSpec {
    FaultSpec {
        drop_prob: cell.loss,
        corrupt_prob: 0.0,
        duplicate_prob: 0.0,
        reorder_prob: if cell.reorder { 0.03 } else { 0.0 },
        // Several serialization times: genuinely permutes the stream.
        reorder_delay: TimeDelta::from_micros(3),
    }
}

fn cell_outage(cell: &Cell, from_us: u64, to_us: u64) -> Option<(Time, Time)> {
    cell.outage
        .then(|| (Time::from_micros(from_us), Time::from_micros(to_us)))
}

/// A cell is faulty if any injection is enabled; the clean cell must ride
/// the fast path with zero reliability activity.
fn is_clean(cell: &Cell) -> bool {
    cell.loss == 0.0 && !cell.outage && !cell.reorder
}

// ---------------------------------------------------------------------------
// State store (FAA counters): remote total must equal ground truth exactly.
// ---------------------------------------------------------------------------

fn run_state_store_cell(cell: &Cell, seed: u64) {
    const COUNT: u64 = 600;
    let counters = 256u64;
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            // Traffic spans ~600us; the outage bites mid-run and is far
            // shorter than the ~3ms retry budget at rto=40us.
            outage: cell_outage(cell, 200, 500),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(
        channel,
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = cell_faults(cell);
    b.connect(switch, PortId(2), server, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(50));

    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(
        prog.is_quiescent(),
        "{cell:?}: stuck window (in_transit={}): {s:?}",
        prog.in_transit()
    );
    assert!(!s.channel.failed_over, "{cell:?}: must not fail over: {s:?}");
    let nic = sim.node::<RnicNode>(server);
    if cell.outage {
        assert!(nic.stats().outage_drops > 0, "{cell:?}: outage never bit");
    }
    let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote, truth, "{cell:?}: counters must settle exactly");
    if is_clean(cell) {
        assert_eq!(s.retransmits, 0, "clean cell must not retransmit: {s:?}");
    }
    assert_eq!(sim.node::<SinkNode>(sink).received, COUNT);
}

#[test]
fn matrix_state_store_settles_exactly() {
    for (i, cell) in grid().iter().enumerate() {
        run_state_store_cell(cell, 9000 + i as u64);
    }
}

#[test]
fn smoke_state_store_worst_cell() {
    run_state_store_cell(&worst_cell(), 9100);
}

// ---------------------------------------------------------------------------
// Packet buffer: every detoured packet released, strictly in order.
// ---------------------------------------------------------------------------

fn run_packet_buffer_cell(cell: &Cell, seed: u64) {
    const COUNT: u64 = 400;
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            // Detour activity spans ~0-250us (85us of 30G arrivals draining
            // through a 10G sink); the outage lands inside it.
            outage: cell_outage(cell, 50, 150),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(2));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 4096,
            resume_load_qbytes: 2048,
        },
        8,
        TimeDelta::from_micros(50),
    );
    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            800,
            Rate::from_gbps(30),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        sink,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = cell_faults(cell);
    b.connect(switch, PortId(2), server, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(60));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let s = sw.program::<PacketBufferProgram>().stats();
    assert!(s.stored > 0, "{cell:?}: the detour was never exercised");
    assert!(!s.channel.failed_over, "{cell:?}: must not fail over: {s:?}");
    if cell.outage {
        let nic = sim.node::<RnicNode>(server);
        assert!(nic.stats().outage_drops > 0, "{cell:?}: outage never bit");
    }
    assert_eq!(s.lost_entries, 0, "{cell:?}: entries lost: {s:?}");
    assert_eq!(s.loaded, s.stored, "{cell:?}: ring left entries behind: {s:?}");
    assert_eq!(sink.received, COUNT, "{cell:?}: packets lost: {s:?}");
    assert_eq!(sink.total_reorders(), 0, "{cell:?}: ring order violated");
    assert_eq!(sink.corrupt, 0, "{cell:?}: payload corrupted");
    if is_clean(cell) {
        assert_eq!(s.channel.retransmits, 0, "clean cell must not retransmit");
    }
}

#[test]
fn matrix_packet_buffer_releases_in_order() {
    for (i, cell) in grid().iter().enumerate() {
        run_packet_buffer_cell(cell, 9200 + i as u64);
    }
}

#[test]
fn smoke_packet_buffer_worst_cell() {
    run_packet_buffer_cell(&worst_cell(), 9300);
}

// ---------------------------------------------------------------------------
// Lookup table (bounce mode): every packet comes back with its action.
// ---------------------------------------------------------------------------

fn run_lookup_cell(cell: &Cell, seed: u64) {
    const COUNT: u64 = 300;
    const DSCP: u8 = 46;
    let mut nic = RnicNode::new(
        "tablesrv",
        RnicConfig {
            // ~300us of traffic; outage inside it, shorter than the ~3ms
            // retry budget at rto=40us.
            outage: cell_outage(cell, 100, 350),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(4096 * 2048),
    );
    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 80, 17);
    install_remote_action(&mut nic, &channel, 2048, &flow, ActionEntry::set_dscp(DSCP));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    // No cache: every packet must do a full remote bounce.
    let prog = LookupTableProgram::new(fib, channel, 2048, None).with_reliability(ReliableConfig {
        rto: TimeDelta::from_micros(40),
        ..Default::default()
    });

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "client",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 256, Rate::from_gbps(2), COUNT),
    )));
    let mut sink = SinkNode::new("server");
    sink.expect_dscp = Some(DSCP);
    let server = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = cell_faults(cell);
    b.connect(switch, PortId(2), table, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(50));

    let sink = sim.node::<SinkNode>(server);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<LookupTableProgram>();
    let s = prog.stats();
    assert!(!prog.is_degraded(), "{cell:?}: must not fail over: {s:?}");
    assert_eq!(s.failed_ops, 0, "{cell:?}: leaked outstanding ops: {s:?}");
    assert_eq!(sink.received, COUNT, "{cell:?}: packets lost: {s:?}");
    assert_eq!(sink.dscp_mismatch, 0, "{cell:?}: action not applied");
    assert_eq!(s.actions_applied, COUNT, "{cell:?}: {s:?}");
    assert_eq!(s.slow_path, 0, "{cell:?}: {s:?}");
    if cell.outage {
        let nic = sim.node::<RnicNode>(table);
        assert!(nic.stats().outage_drops > 0, "{cell:?}: outage never bit");
    }
    if is_clean(cell) {
        assert_eq!(s.channel.retransmits, 0, "clean cell must not retransmit");
    }
}

#[test]
fn matrix_lookup_applies_every_action() {
    for (i, cell) in grid().iter().enumerate() {
        run_lookup_cell(cell, 9400 + i as u64);
    }
}

#[test]
fn smoke_lookup_worst_cell() {
    run_lookup_cell(&worst_cell(), 9500);
}

// ---------------------------------------------------------------------------
// LPM: every packet routed by its longest matching prefix.
// ---------------------------------------------------------------------------

fn run_lpm_cell(cell: &Cell, seed: u64, remote_ops: bool) {
    const COUNT: u64 = 250;
    let levels = vec![32u8, 24, 16];
    let mut nic = RnicNode::new(
        "routesrv",
        RnicConfig {
            outage: cell_outage(cell, 80, 300),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let region = ByteSize::from_mb(1);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);
    let spl = slots_per_level(region.bytes(), &levels);
    let dst_ip = 0x0a010203u32;
    let route = |dscp: u8| {
        let mut a = ActionEntry::set_dscp(dscp);
        a.port_override = Some(PortId(1));
        a
    };
    // A /16 shadow route plus the /32 winner: resolution must pick /32.
    install_remote_route(&mut nic, &channel, &levels, spl, 0x0a010000, 16, route(10));
    install_remote_route(&mut nic, &channel, &levels, spl, dst_ip, 32, route(32));

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    // No cache: every packet costs a full 3-rung remote lookup (one
    // gather/walk op per packet when remote ops are on).
    let prog = RemoteLpmProgram::new(fib, channel, levels, None)
        .with_remote_ops(remote_ops)
        .with_reliability(ReliableConfig {
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        });

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let flow = FiveTuple::new(host_ip(0), dst_ip, 5000, 9000, 17);
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 256, Rate::from_gbps(2), COUNT),
    )));
    let mut sink = SinkNode::new("sink");
    sink.expect_dscp = Some(32);
    let sink = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = cell_faults(cell);
    b.connect(switch, PortId(2), srv, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(50));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<RemoteLpmProgram>();
    let s = prog.stats();
    assert!(!prog.is_degraded(), "{cell:?}: must not fail over: {s:?}");
    assert_eq!(s.lookups_failed, 0, "{cell:?}: lookups abandoned: {s:?}");
    assert_eq!(s.degraded_fallbacks, 0, "{cell:?}: {s:?}");
    assert_eq!(sink.received, COUNT, "{cell:?}: packets lost: {s:?}");
    assert_eq!(sink.dscp_mismatch, 0, "{cell:?}: wrong rung won");
    assert_eq!(s.routed, COUNT, "{cell:?}: {s:?}");
    assert_eq!(s.no_route, 0, "{cell:?}: {s:?}");
    // Exactly one completion per issued request — duplicates were deduped
    // and nothing leaked. Verb mode settles 3 rung READs per miss; the
    // gather/walk op settles the whole ladder in one exchange even when the
    // request or the response was lost and had to be retransmitted.
    let per_miss: u64 = if remote_ops { 1 } else { 3 };
    assert_eq!(s.responses, per_miss * COUNT, "{cell:?}: {s:?}");
    assert_eq!(s.rtts_per_miss(), Some(per_miss as f64), "{cell:?}: {s:?}");
    if cell.outage {
        let nic = sim.node::<RnicNode>(srv);
        assert!(nic.stats().outage_drops > 0, "{cell:?}: outage never bit");
    }
    if is_clean(cell) {
        assert_eq!(s.channel.retransmits, 0, "clean cell must not retransmit");
    }
}

#[test]
fn matrix_lpm_routes_every_packet() {
    for (i, cell) in grid().iter().enumerate() {
        run_lpm_cell(cell, 9600 + i as u64, false);
    }
}

#[test]
fn smoke_lpm_worst_cell() {
    run_lpm_cell(&worst_cell(), 9700, false);
}

#[test]
fn matrix_remote_ops_lpm_gather_settles_exactly() {
    for (i, cell) in grid().iter().enumerate() {
        run_lpm_cell(cell, 9800 + i as u64, true);
    }
}

#[test]
fn smoke_remote_ops_lpm_worst_cell() {
    run_lpm_cell(&worst_cell(), 9900, true);
}

// ---------------------------------------------------------------------------
// Cuckoo remote ops under faults: hash-probe-and-fetch lookups and
// conditional-WRITE relocations ride retransmission and still settle
// oracle-exact — zero punts and the table byte image bit-for-bit equal to
// the control-plane directory.
// ---------------------------------------------------------------------------

fn run_cuckoo_probe_cell(cell: &Cell, seed: u64) {
    const COUNT: u64 = 300;
    const DSCP: u8 = 46;
    const TRAFFIC_KEYS: u16 = 96;
    const CHURN_KEYS: u16 = 48;
    const WINDOW: usize = 8;
    let cfg = CuckooConfig {
        buckets: 64,
        filter_cells: 2048,
        filter_hashes: 2,
        max_plan_steps: 64,
    };
    let mut dir = CuckooDirectory::new(cfg);
    let flows: Vec<FiveTuple> = (0..TRAFFIC_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP)).unwrap();
    }
    let churn_keys: Vec<FiveTuple> = (0..CHURN_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 50_000 + i, 80, 17))
        .collect();
    let mut ops = Vec::new();
    for (i, k) in churn_keys.iter().enumerate() {
        ops.push(ControlOp::Insert(*k, ActionEntry::set_dscp(12)));
        if i >= WINDOW {
            ops.push(ControlOp::Remove(churn_keys[i - WINDOW]));
        }
    }
    for k in &churn_keys[CHURN_KEYS as usize - WINDOW..] {
        ops.push(ControlOp::Remove(*k));
    }
    let script = ChurnScript {
        ops,
        period: TimeDelta::from_micros(3),
    };

    let mut nic = RnicNode::new(
        "tablesrv",
        RnicConfig {
            outage: cell_outage(cell, 100, 350),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let region = ByteSize::from_bytes(dir.region_bytes());
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);
    let rkey = channel.rkey;
    let base = channel.base_va;
    install_cuckoo_image(&mut nic, &channel, &dir);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    // No cache: every packet costs one hash-probe-and-fetch op; every
    // relocation step costs one conditional WRITE.
    let prog = LookupTableProgram::cuckoo(fib, channel, dir, None)
        .with_remote_ops(true)
        .with_reliability(ReliableConfig {
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        })
        .with_churn(script);

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::Zipf(1.1),
        frame_len: 256,
        offered: Some(Rate::from_gbps(2)),
        arrival: Arrival::Paced,
        count: COUNT,
        seed: 23,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let mut sink = SinkNode::new("server");
    sink.expect_dscp = Some(DSCP);
    let server = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = cell_faults(cell);
    b.connect(switch, PortId(2), table, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.schedule_timer(
        switch,
        TimeDelta::from_micros(2),
        extmem_switch::switch::program_token(TOKEN_CHURN),
    );
    sim.run_until(Time::from_millis(50));

    let sink = sim.node::<SinkNode>(server);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<LookupTableProgram>();
    let s = prog.stats();
    assert!(!prog.is_degraded(), "{cell:?}: must not fail over: {s:?}");
    assert_eq!(sink.received, COUNT, "{cell:?}: packets lost: {s:?}");
    assert_eq!(sink.dscp_mismatch, 0, "{cell:?}: action not applied");
    assert_eq!(s.slow_path, 0, "{cell:?}: probe punted: {s:?}");
    assert_eq!(s.bucket_misses, 0, "{cell:?}: probe missed a resident key: {s:?}");
    assert_eq!(s.inserts_applied, CHURN_KEYS as u64, "{cell:?}: {s:?}");
    assert_eq!(s.removes_applied, CHURN_KEYS as u64, "{cell:?}: {s:?}");
    assert!(prog.relocation_idle(), "{cell:?}: relocation work leaked: {s:?}");
    // One hash-probe exchange per miss, loss or not: retransmission must
    // not double-issue ops or leave any without a completion.
    assert_eq!(s.rtts_per_miss(), Some(1.0), "{cell:?}: {s:?}");
    assert_eq!(s.reads_per_lookup(), Some(1.0), "{cell:?}: {s:?}");
    // Bit-for-bit: the settled table equals the directory's byte image, so
    // every conditional WRITE landed exactly once despite drops.
    let image = prog.directory().unwrap().encode_region();
    let remote = sim
        .node::<RnicNode>(table)
        .region(rkey)
        .read(base, image.len() as u64)
        .unwrap();
    assert_eq!(remote, &image[..], "{cell:?}: table diverges from directory: {s:?}");
    if cell.outage {
        let nic = sim.node::<RnicNode>(table);
        assert!(nic.stats().outage_drops > 0, "{cell:?}: outage never bit");
    }
    if is_clean(cell) {
        assert_eq!(s.channel.retransmits, 0, "clean cell must not retransmit");
    }
}

#[test]
fn matrix_remote_ops_cuckoo_probe_settles_exactly() {
    for (i, cell) in grid().iter().enumerate() {
        run_cuckoo_probe_cell(cell, 10_000 + i as u64);
    }
}

#[test]
fn smoke_remote_ops_cuckoo_worst_cell() {
    run_cuckoo_probe_cell(&worst_cell(), 10_100);
}

// ---------------------------------------------------------------------------
// Failover: past the retry cap, degrade to local-only without deadlock.
// ---------------------------------------------------------------------------

/// A retry policy that gives up after ~210us of silence (two retransmit
/// rounds at 30/60us, then the 120us cap expires).
fn fast_failover() -> ReliableConfig {
    ReliableConfig {
        rto: TimeDelta::from_micros(30),
        max_retries: 2,
        max_backoff_level: 2,
        ..Default::default()
    }
}

#[test]
fn state_store_failover_accumulates_locally() {
    // The server never comes back within the run: the channel must fail
    // over and the store keep exact *local* truth (remote + pending).
    let counters = 128u64;
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            outage: Some((Time::from_micros(150), Time::from_millis(40))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(
        channel,
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(30),
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));
    let mut b = SimBuilder::new(4242);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            600,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), server, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(30));

    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(prog.is_degraded(), "retry cap must trip failover: {s:?}");
    assert!(s.channel.failed_over, "{s:?}");
    // No op left outstanding: everything sent-but-unacked was returned to
    // the local accumulator (in_transit = pending + outstanding).
    assert_eq!(
        prog.in_transit(),
        prog.pending_sum(),
        "outstanding ops leaked: {s:?}"
    );
    // Conservation holds locally: what landed remotely plus what degraded
    // mode accumulated is exactly the ground truth. Nothing double-counted
    // (a failed op's value moves back to pending exactly once).
    let nic = sim.node::<RnicNode>(server);
    let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(
        remote + prog.pending_sum(),
        truth,
        "local accumulation must preserve every update"
    );
    assert!(prog.pending_sum() > 0, "failover must strand updates locally");
    // Forwarding is never disturbed.
    assert_eq!(sim.node::<SinkNode>(sink).received, 600);
}

#[test]
fn packet_buffer_failover_stops_detouring_and_drains() {
    // Server gone for good: entries in flight at failover are lost (they
    // lived only in remote memory), but the ring drains, accounting stays
    // exact, and post-failover traffic flows untouched — no deadlock.
    const COUNT: u64 = 2000;
    let mut nic = RnicNode::new(
        "memsrv",
        RnicConfig {
            // Dark from 30us on: the ~210us retry budget expires inside the
            // ~430us burst, so post-failover arrivals must flow directly.
            outage: Some((Time::from_micros(30), Time::from_millis(50))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(2));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::new(
        fib,
        vec![channel],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 4096,
            resume_load_qbytes: 2048,
        },
        8,
        TimeDelta::from_micros(30),
    )
    .with_reliability(fast_failover());
    let mut b = SimBuilder::new(4243);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            800,
            Rate::from_gbps(30),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        sink,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), server, PortId(0), LinkSpec::testbed_40g());
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(60));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<PacketBufferProgram>();
    let s = prog.stats();
    assert!(prog.is_degraded(), "retry cap must trip failover: {s:?}");
    assert!(s.channel.failed_over, "{s:?}");
    assert!(s.lost_entries > 0, "in-flight entries are gone: {s:?}");
    assert_eq!(
        s.loaded + s.lost_entries,
        s.stored,
        "ring accounting must stay exact: {s:?}"
    );
    assert_eq!(sink.total_reorders(), 0, "order must hold through failover");
    // Every packet is delivered, accounted as a lost ring entry, or (the
    // direct path is congested once detouring stops) dropped by the TM —
    // nothing vanishes silently.
    assert_eq!(
        sink.received + s.lost_entries + sw.tm().total_drops(),
        COUNT,
        "unaccounted packets: {s:?}"
    );
    // Degraded mode keeps forwarding: the tail of the burst (sent after
    // failover) must have arrived.
    assert!(sink.received > 500, "post-failover traffic wedged: {s:?}");
}

#[test]
fn lookup_failover_punts_to_slow_path() {
    const COUNT: u64 = 300;
    let mut nic = RnicNode::new(
        "tablesrv",
        RnicConfig {
            // Dark from 30us on: the ~210us retry budget expires mid-burst
            // (~300us of traffic), so post-failover arrivals exist.
            outage: Some((Time::from_micros(30), Time::from_millis(40))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(4096 * 2048),
    );
    let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 80, 17);
    install_remote_action(&mut nic, &channel, 2048, &flow, ActionEntry::set_dscp(46));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = LookupTableProgram::new(fib, channel, 2048, None).with_reliability(fast_failover());
    let mut b = SimBuilder::new(4244);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "client",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 256, Rate::from_gbps(2), COUNT),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("server")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let table = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), table, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(30));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<LookupTableProgram>();
    let s = prog.stats();
    assert!(prog.is_degraded(), "retry cap must trip failover: {s:?}");
    assert!(s.channel.failed_over, "{s:?}");
    assert!(s.slow_path > 0, "degraded misses must punt, not stall: {s:?}");
    assert!(s.failed_ops > 0, "in-flight bounces must be accounted: {s:?}");
    // A bounced packet lost to failover lived only in remote memory; each
    // failed op covers at most one such packet, so delivery plus failures
    // bounds the burst. No silent loss, no deadlock.
    assert!(
        sink.received + s.failed_ops >= COUNT,
        "unaccounted loss: received={} {s:?}",
        sink.received
    );
    assert!(
        sink.received < COUNT,
        "in-flight bounces at failover must be lost: {s:?}"
    );
    // The slow path actually carries traffic: everything punted after
    // failover reached the sink (pre-failover bounces into the dead server
    // are the only losses).
    assert!(
        sink.received >= s.slow_path,
        "slow-path packets vanished: received={} {s:?}",
        sink.received
    );
}

#[test]
fn lpm_failover_forwards_fib_only() {
    const COUNT: u64 = 300;
    let levels = vec![32u8, 24, 16];
    let mut nic = RnicNode::new(
        "routesrv",
        RnicConfig {
            // Dark from 30us on: failover (~240us) lands inside the
            // ~300us burst.
            outage: Some((Time::from_micros(30), Time::from_millis(40))),
            ..RnicConfig::at(host_endpoint(2))
        },
    );
    let region = ByteSize::from_mb(1);
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, region);
    let spl = slots_per_level(region.bytes(), &levels);
    let dst_ip = 0x0a010203u32;
    let mut a = ActionEntry::set_dscp(32);
    a.port_override = Some(PortId(1));
    install_remote_route(&mut nic, &channel, &levels, spl, dst_ip, 32, a);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = RemoteLpmProgram::new(fib, channel, levels, None).with_reliability(fast_failover());
    let mut b = SimBuilder::new(4245);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let flow = FiveTuple::new(host_ip(0), dst_ip, 5000, 9000, 17);
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(host_mac(0), host_mac(1), flow, 256, Rate::from_gbps(2), COUNT),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(30));

    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<RemoteLpmProgram>();
    let s = prog.stats();
    assert!(prog.is_degraded(), "retry cap must trip failover: {s:?}");
    assert!(s.channel.failed_over, "{s:?}");
    assert!(
        s.degraded_fallbacks > 0,
        "degraded misses must forward FIB-only: {s:?}"
    );
    // Packets waiting on abandoned rung READs are dropped (and counted);
    // everything else flows. No wedge, full accounting.
    assert_eq!(
        sink.received + s.lookups_failed,
        COUNT,
        "every packet delivered or accounted: {s:?}"
    );
    // The FIB-only path actually carries traffic: every degraded fallback
    // reached the sink.
    assert!(
        sink.received >= s.degraded_fallbacks,
        "fallback packets vanished: received={} {s:?}",
        sink.received
    );
}

// ---------------------------------------------------------------------------
// PSN wrap-around: reliability bookkeeping across the 24-bit boundary.
// ---------------------------------------------------------------------------

#[test]
fn packet_buffer_exact_across_psn_wrap_with_loss() {
    // ~800 request PSNs per run starting 384 short of 2^24: the sequence
    // wraps mid-run while 5% loss keeps retransmissions in flight around
    // the boundary (wrap mid-retransmit).
    for seed in [11u64, 12, 13] {
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
        let channel = RdmaChannel::setup_at_psn(
            switch_endpoint(),
            PortId(2),
            &mut nic,
            ByteSize::from_mb(2),
            0x00ff_fe80,
        );
        let mut fib = Fib::new(8);
        fib.install(host_mac(0), PortId(0));
        fib.install(host_mac(1), PortId(1));
        let prog = PacketBufferProgram::new(
            fib,
            vec![channel],
            PortId(1),
            2048,
            Mode::Auto {
                start_store_qbytes: 4096,
                resume_load_qbytes: 2048,
            },
            8,
            TimeDelta::from_micros(50),
        );
        let mut b = SimBuilder::new(seed);
        let switch = b.add_node(Box::new(SwitchNode::new(
            "tor",
            SwitchConfig::default(),
            Box::new(prog),
        )));
        let gen = b.add_node(Box::new(TrafficGenNode::new(
            "gen",
            WorkloadSpec::simple(
                host_mac(0),
                host_mac(1),
                FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
                800,
                Rate::from_gbps(30),
                400,
            ),
        )));
        let sink = b.add_node(Box::new(SinkNode::new("sink")));
        b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
        b.connect(
            switch,
            PortId(1),
            sink,
            PortId(0),
            LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
        );
        let server = b.add_node(Box::new(nic));
        let mut lossy = LinkSpec::testbed_40g();
        lossy.faults = FaultSpec::drop(0.05);
        b.connect(switch, PortId(2), server, PortId(0), lossy);
        let mut sim = b.build();
        sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        sim.run_until(Time::from_millis(60));

        let sink = sim.node::<SinkNode>(sink);
        let sw: &SwitchNode = sim.node(switch);
        let s = sw.program::<PacketBufferProgram>().stats();
        assert!(s.channel.retransmits > 0, "seed {seed}: loss never bit: {s:?}");
        assert!(!s.channel.failed_over, "seed {seed}: {s:?}");
        assert_eq!(s.lost_entries, 0, "seed {seed}: {s:?}");
        assert_eq!(s.loaded, s.stored, "seed {seed}: {s:?}");
        assert_eq!(sink.received, 400, "seed {seed}: packets lost: {s:?}");
        assert_eq!(sink.total_reorders(), 0, "seed {seed}: order violated");
    }
}

#[test]
fn state_store_exact_across_psn_wrap_with_loss() {
    // FAA traffic starting 16 PSNs short of the wrap under 5% loss: the
    // retransmission window itself straddles the boundary.
    let counters = 128u64;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup_at_psn(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
        0x00ff_fff0,
    );
    let rkey = channel.rkey;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(
        channel,
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));
    let mut b = SimBuilder::new(321);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            600,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    let mut lossy = LinkSpec::testbed_40g();
    lossy.faults = FaultSpec::drop(0.05);
    b.connect(switch, PortId(2), server, PortId(0), lossy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(50));

    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(s.retransmits > 0, "loss never bit: {s:?}");
    assert!(prog.is_quiescent(), "stuck across the wrap: {s:?}");
    let nic = sim.node::<RnicNode>(server);
    let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote, truth, "wrap must not corrupt the count");
}

// ---------------------------------------------------------------------------
// Whole-server crashes: replicated pools must lose nothing. A two-replica
// pool sees one server die mid-workload (optionally coming back and being
// reconciled) and the settled invariants must stay *exact*.
// ---------------------------------------------------------------------------

use extmem_core::{Health, PoolConfig};

/// Aggressive detection knobs so failover and rejoin land inside short
/// test runs: two consecutive timeouts mark a server down, probes fire
/// every 100us.
fn crash_pool_config() -> PoolConfig {
    PoolConfig {
        down_threshold: 2,
        probe_interval: TimeDelta::from_micros(100),
        ..Default::default()
    }
}

/// Replicated state store under a whole-node crash at 200us. With
/// `crash_primary` the primary dies (FaA must fail over); otherwise the
/// mirror dies (the primary keeps counting). With `rejoin` the dead server
/// restarts at 500us with wiped DRAM and must be reconciled bit-for-bit
/// (counters re-seeded from the survivor, then deltas replayed).
fn run_state_store_crash_cell(crash_primary: bool, rejoin: bool, seed: u64) {
    const COUNT: u64 = 600;
    let counters = 256u64;
    let region = ByteSize::from_bytes(counters * 8);
    let mut nic_a = RnicNode::new("memsrv-a", RnicConfig::at(host_endpoint(2)));
    let mut nic_b = RnicNode::new("memsrv-b", RnicConfig::at(host_endpoint(3)));
    let ch_a = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic_a, region);
    let ch_b = RdmaChannel::setup(switch_endpoint(), PortId(3), &mut nic_b, region);
    let rkey = ch_a.rkey;
    let base = ch_a.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::replicated(
        vec![ch_a, ch_b],
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(30),
            ..Default::default()
        },
        PoolConfig {
            // A restarted server's DRAM is wiped: its counters must be
            // re-seeded from the survivor before deltas are replayed.
            reseed_atomics: true,
            ..crash_pool_config()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server_a = b.add_node(Box::new(nic_a));
    let server_b = b.add_node(Box::new(nic_b));
    b.connect(switch, PortId(2), server_a, PortId(0), link);
    b.connect(switch, PortId(3), server_b, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let victim = if crash_primary { server_a } else { server_b };
    let survivor = if crash_primary { server_b } else { server_a };
    // Mid-workload (traffic spans ~600us).
    sim.schedule_crash(victim, TimeDelta::from_micros(200));
    if rejoin {
        sim.schedule_restart(victim, TimeDelta::from_micros(500));
    }
    sim.run_until(Time::from_millis(50));

    let cell = (crash_primary, rejoin);
    assert!(sim.crash_drops(victim) > 0, "{cell:?}: crash never bit");
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(prog.is_quiescent(), "{cell:?}: stuck window: {s:?}");
    assert!(
        !prog.is_degraded(),
        "{cell:?}: one replica must keep the pool alive: {s:?}"
    );
    if crash_primary {
        assert!(s.pool.failovers >= 1, "{cell:?}: no failover: {s:?}");
    } else {
        assert_eq!(s.pool.failovers, 0, "{cell:?}: spurious failover: {s:?}");
    }
    // Zero lost counts: whichever replica now serves reads holds the exact
    // ground truth.
    let truth: u64 = prog.oracle.values().sum();
    let surv_dump = read_remote_counters(sim.node::<RnicNode>(survivor), rkey, base, counters);
    let surv_total: u64 = surv_dump.iter().sum();
    assert_eq!(surv_total, truth, "{cell:?}: counts lost: {s:?}");
    if rejoin {
        assert!(s.pool.rejoins >= 1, "{cell:?}: server never rejoined: {s:?}");
        assert!(s.pool.probes >= 1, "{cell:?}: no probe issued: {s:?}");
        // Bit-for-bit reconciliation: the restarted server's counter
        // array equals the survivor's, slot by slot.
        let back = read_remote_counters(sim.node::<RnicNode>(victim), rkey, base, counters);
        assert_eq!(
            back, surv_dump,
            "{cell:?}: rejoined replica diverges from survivor: {s:?}"
        );
        let pool = prog.pool();
        assert_eq!(pool.health(0), Health::Healthy, "{cell:?}: {s:?}");
        assert_eq!(pool.health(1), Health::Healthy, "{cell:?}: {s:?}");
    } else {
        assert_eq!(s.pool.unavailable, 1, "{cell:?}: {s:?}");
        assert_eq!(s.pool.rejoins, 0, "{cell:?}: {s:?}");
    }
    assert_eq!(sim.node::<SinkNode>(sink).received, COUNT);
}

#[test]
fn crash_state_store_primary_loses_nothing() {
    run_state_store_crash_cell(true, false, 9800);
}

#[test]
fn crash_state_store_mirror_loses_nothing() {
    run_state_store_crash_cell(false, false, 9801);
}

#[test]
fn crash_state_store_rejoin_reconciles_bit_for_bit() {
    run_state_store_crash_cell(true, true, 9802);
}

#[test]
fn crash_state_store_rejoin_under_parallel_backend() {
    // The harshest crash cell (primary dies mid-workload, restarts with
    // wiped DRAM, must reconcile bit-for-bit) replayed on the parallel
    // engine with two partitions. The 5-node topology splits as
    // {switch, gen, sink | server_a, server_b}, so the crashed node lives
    // in a *different* partition than the switch driving it: the crash and
    // restart admin events, failover probes, reseed WRITEs, and delta
    // replay all cross the partition boundary under lookahead bounds.
    extmem_sim::with_sched_backend(extmem_sim::SchedBackend::Parallel(2), || {
        run_state_store_crash_cell(true, true, 9802);
    });
}

/// Replicated packet buffer under a whole-node crash at 50us (inside the
/// detour burst). Stored entries fan out to both replicas, so no buffered
/// packet is lost whichever server dies; with `rejoin` the dead server
/// restarts and is promoted back only once the ring has drained.
fn run_packet_buffer_crash_cell(crash_primary: bool, rejoin: bool, seed: u64) {
    const COUNT: u64 = 400;
    let mut nic_a = RnicNode::new("memsrv-a", RnicConfig::at(host_endpoint(2)));
    let mut nic_b = RnicNode::new("memsrv-b", RnicConfig::at(host_endpoint(3)));
    let region = ByteSize::from_mb(2);
    let ch_a = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic_a, region);
    let ch_b = RdmaChannel::setup(switch_endpoint(), PortId(3), &mut nic_b, region);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = PacketBufferProgram::replicated(
        fib,
        vec![vec![ch_a, ch_b]],
        PortId(1),
        2048,
        Mode::Auto {
            start_store_qbytes: 4096,
            resume_load_qbytes: 2048,
        },
        8,
        TimeDelta::from_micros(30),
        crash_pool_config(),
    );
    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            800,
            Rate::from_gbps(30),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
    b.connect(
        switch,
        PortId(1),
        sink,
        PortId(0),
        LinkSpec::new(Rate::from_gbps(10), TimeDelta::from_nanos(300)),
    );
    let server_a = b.add_node(Box::new(nic_a));
    let server_b = b.add_node(Box::new(nic_b));
    b.connect(switch, PortId(2), server_a, PortId(0), LinkSpec::testbed_40g());
    b.connect(switch, PortId(3), server_b, PortId(0), LinkSpec::testbed_40g());
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    let victim = if crash_primary { server_a } else { server_b };
    sim.schedule_crash(victim, TimeDelta::from_micros(50));
    if rejoin {
        sim.schedule_restart(victim, TimeDelta::from_micros(250));
    }
    sim.run_until(Time::from_millis(60));

    let cell = (crash_primary, rejoin);
    assert!(sim.crash_drops(victim) > 0, "{cell:?}: crash never bit");
    let sink = sim.node::<SinkNode>(sink);
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<PacketBufferProgram>();
    let s = prog.stats();
    assert!(s.stored > 0, "{cell:?}: the detour was never exercised");
    // Zero lost packets: every stored entry fanned out to the survivor, so
    // the crash costs retransmissions and a failover, never data.
    assert_eq!(s.lost_entries, 0, "{cell:?}: entries lost: {s:?}");
    assert_eq!(s.loaded, s.stored, "{cell:?}: ring left entries behind: {s:?}");
    assert_eq!(sink.received, COUNT, "{cell:?}: packets lost: {s:?}");
    assert_eq!(sink.total_reorders(), 0, "{cell:?}: ring order violated");
    assert_eq!(sink.corrupt, 0, "{cell:?}: payload corrupted");
    if crash_primary {
        assert!(s.pool.failovers >= 1, "{cell:?}: no failover: {s:?}");
    } else {
        assert_eq!(s.pool.failovers, 0, "{cell:?}: spurious failover: {s:?}");
        assert!(s.pool.mirror_writes > 0, "{cell:?}: fanout never ran: {s:?}");
    }
    if rejoin {
        assert!(s.pool.rejoins >= 1, "{cell:?}: server never rejoined: {s:?}");
        let pool = prog.pool(0);
        assert_eq!(pool.health(0), Health::Healthy, "{cell:?}: {s:?}");
        assert_eq!(pool.health(1), Health::Healthy, "{cell:?}: {s:?}");
    } else {
        assert_eq!(s.pool.unavailable, 1, "{cell:?}: {s:?}");
    }
}

#[test]
fn crash_packet_buffer_primary_loses_nothing() {
    run_packet_buffer_crash_cell(true, false, 9810);
}

#[test]
fn crash_packet_buffer_mirror_loses_nothing() {
    run_packet_buffer_crash_cell(false, false, 9811);
}

#[test]
fn crash_packet_buffer_rejoin_waits_for_ring_drain() {
    run_packet_buffer_crash_cell(true, true, 9812);
}

/// Replicated one-RTT cuckoo lookup through a primary crash *mid-relocation
/// storm*: scripted inserts/deletes churn the table while traffic flows,
/// the primary dies with relocations in flight, the pool fails over (the
/// mirror holds every fanned-out WRITE), and the restarted server is
/// reconciled from the control-plane directory — the authoritative copy —
/// before promotion. Settled state must be exact: zero punts, every churn
/// op applied, and both replicas bit-for-bit equal to the directory image.
#[test]
fn crash_lookup_mid_relocation_rejoins_bit_for_bit() {
    run_crash_lookup_cell(false);
}

/// The same crash cell with the remote-op ISA on: lookups are
/// hash-probe-and-fetch ops and relocation steps are conditional WRITEs.
/// Ops in flight when the primary dies are reissued verbatim on the
/// survivor, decided conditional writes fan their write image to the
/// mirror, and the rejoiner is reconciled from the directory — so the
/// bit-for-bit check proves op side effects are reproduced exactly.
/// (`scripts/ci.sh` re-runs this cell in release via the `crash_` glob.)
#[test]
fn crash_remote_ops_lookup_rejoins_bit_for_bit() {
    run_crash_lookup_cell(true);
}

fn run_crash_lookup_cell(remote_ops: bool) {
    const COUNT: u64 = 600;
    const DSCP: u8 = 46;
    const TRAFFIC_KEYS: u16 = 140;
    const CHURN_KEYS: u16 = 96;
    const WINDOW: usize = 8;
    let cfg = CuckooConfig {
        buckets: 64,
        filter_cells: 2048,
        filter_hashes: 2,
        max_plan_steps: 64,
    };
    let mut dir = CuckooDirectory::new(cfg);
    let flows: Vec<FiveTuple> = (0..TRAFFIC_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17))
        .collect();
    for f in &flows {
        dir.install(*f, ActionEntry::set_dscp(DSCP)).unwrap();
    }
    let churn_keys: Vec<FiveTuple> = (0..CHURN_KEYS)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 50_000 + i, 80, 17))
        .collect();
    let mut ops = Vec::new();
    for (i, k) in churn_keys.iter().enumerate() {
        ops.push(ControlOp::Insert(*k, ActionEntry::set_dscp(12)));
        if i >= WINDOW {
            ops.push(ControlOp::Remove(churn_keys[i - WINDOW]));
        }
    }
    for k in &churn_keys[CHURN_KEYS as usize - WINDOW..] {
        ops.push(ControlOp::Remove(*k));
    }
    let script = ChurnScript {
        ops,
        period: TimeDelta::from_micros(3),
    };

    let region = ByteSize::from_bytes(dir.region_bytes());
    let mut nic_a = RnicNode::new("tablesrv-a", RnicConfig::at(host_endpoint(2)));
    let mut nic_b = RnicNode::new("tablesrv-b", RnicConfig::at(host_endpoint(3)));
    let ch_a = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic_a, region);
    let ch_b = RdmaChannel::setup(switch_endpoint(), PortId(3), &mut nic_b, region);
    let rkey = ch_a.rkey;
    let base = ch_a.base_va;
    install_cuckoo_image(&mut nic_a, &ch_a, &dir);
    install_cuckoo_image(&mut nic_b, &ch_b, &dir);
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog =
        LookupTableProgram::cuckoo_replicated(fib, vec![ch_a, ch_b], dir, None, crash_pool_config())
            .with_remote_ops(remote_ops)
            .with_reliability(ReliableConfig {
                rto: TimeDelta::from_micros(30),
                ..Default::default()
            })
            .with_churn(script);

    let mut b = SimBuilder::new(9815);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let spec = WorkloadSpec {
        src_mac: host_mac(0),
        dst_mac: host_mac(1),
        flows: flows.into(),
        pick: FlowPick::Zipf(1.1),
        frame_len: 256,
        offered: Some(Rate::from_gbps(2)),
        arrival: Arrival::Paced,
        count: COUNT,
        seed: 23,
        flow_id_base: 0,
    };
    let gen = b.add_node(Box::new(TrafficGenNode::new("client", spec)));
    let mut sink = SinkNode::new("server");
    sink.expect_dscp = Some(DSCP);
    let server = b.add_node(Box::new(sink));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), server, PortId(0), link);
    let server_a = b.add_node(Box::new(nic_a));
    let server_b = b.add_node(Box::new(nic_b));
    b.connect(switch, PortId(2), server_a, PortId(0), link);
    b.connect(switch, PortId(3), server_b, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.schedule_timer(
        switch,
        TimeDelta::from_micros(2),
        extmem_switch::switch::program_token(TOKEN_CHURN),
    );
    // Traffic and churn span ~600us; the primary dies with the relocation
    // storm running and comes back with wiped DRAM while it continues.
    sim.schedule_crash(server_a, TimeDelta::from_micros(150));
    sim.schedule_restart(server_a, TimeDelta::from_micros(350));
    sim.run_until(Time::from_millis(50));

    assert!(sim.crash_drops(server_a) > 0, "crash never bit");
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<LookupTableProgram>();
    let s = prog.stats();
    assert!(!prog.is_degraded(), "mirror must keep the table alive: {s:?}");
    assert!(s.pool.failovers >= 1, "no failover: {s:?}");
    assert!(s.pool.rejoins >= 1, "server never rejoined: {s:?}");
    assert!(s.pool.probes >= 1, "no probe issued: {s:?}");
    let pool = prog.pool();
    assert_eq!(pool.health(0), Health::Healthy, "{s:?}");
    assert_eq!(pool.health(1), Health::Healthy, "{s:?}");
    // In-flight lookups and relocation ops ride the failover (reissued on
    // the survivor), so the no-transient-miss invariant holds even here.
    let sink = sim.node::<SinkNode>(server);
    assert_eq!(sink.received, COUNT, "packets lost: {s:?}");
    assert_eq!(sink.dscp_mismatch, 0, "a punt kept its old DSCP: {s:?}");
    assert_eq!(s.slow_path, 0, "crash punted a lookup: {s:?}");
    assert_eq!(s.bucket_misses, 0, "filter misdirected a probe: {s:?}");
    if remote_ops {
        // Failover reissues the op, it does not re-plan it: still one
        // hash-probe exchange per miss from the program's point of view.
        assert_eq!(s.rtts_per_miss(), Some(1.0), "{s:?}");
    }
    assert_eq!(s.inserts_applied, CHURN_KEYS as u64, "{s:?}");
    assert_eq!(s.removes_applied, CHURN_KEYS as u64, "{s:?}");
    assert_eq!(s.inserts_rejected, 0, "{s:?}");
    assert!(prog.relocation_idle(), "relocation work leaked: {s:?}");
    // Bit-for-bit: both replicas equal the directory's byte image — the
    // survivor through mirror fan-out, the rejoiner through the reseed.
    let image = prog.directory().unwrap().encode_region();
    for (name, node) in [("rejoiner", server_a), ("survivor", server_b)] {
        let remote = sim
            .node::<RnicNode>(node)
            .region(rkey)
            .read(base, image.len() as u64)
            .unwrap();
        assert_eq!(remote, &image[..], "{name} diverges from directory: {s:?}");
    }
}

/// The sharded state store through a whole-node crash: shard 0's primary
/// dies mid-workload and restarts with wiped DRAM. The blast radius must
/// stay inside the shard — only shard 0's pool fails over, shard 1 never
/// notices — while consistent-hash routing keeps counting on both shards.
/// The restarted replica is reseeded from its survivor, and every shard's
/// settled counters equal the `(shard, slot)` routing oracle exactly on
/// *both* replicas, rejoiner included. (`scripts/ci.sh` re-runs this cell
/// in release via the `crash_` glob.)
#[test]
fn crash_fabric_shard_primary_mid_run_rejoins_exact() {
    const COUNT: u64 = 600;
    const SHARDS: u32 = 2;
    const REPLICAS: usize = 2;
    const COUNTERS: u64 = 256;
    let region = ByteSize::from_bytes(COUNTERS * 8);
    // Servers sit on switch ports 2..6: shard s replica r at 2 + s*2 + r.
    let mut nics: Vec<Option<RnicNode>> = Vec::new();
    let mut keys = Vec::new(); // [shard][replica] -> (rkey, base_va)
    let mut shards = Vec::new();
    for shard in 0..SHARDS {
        let mut channels = Vec::new();
        let mut shard_keys = Vec::new();
        for r in 0..REPLICAS {
            let port = 2 + shard as usize * REPLICAS + r;
            let mut nic = RnicNode::new(
                format!("mems{shard}r{r}"),
                RnicConfig::at(host_endpoint(port)),
            );
            let ch = RdmaChannel::setup(switch_endpoint(), PortId(port as u16), &mut nic, region);
            shard_keys.push((ch.rkey, ch.base_va));
            channels.push(ch);
            nics.push(Some(nic));
        }
        keys.push(shard_keys);
        let engine = FaaEngine::replicated(
            channels,
            FaaConfig {
                reliable: true,
                rto: TimeDelta::from_micros(30),
                ..Default::default()
            },
            PoolConfig {
                reseed_atomics: true,
                ..crash_pool_config()
            },
        );
        shards.push((shard, engine, true));
    }
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let prog = ShardedStateStoreProgram::new(fib, shards, 64, TimeDelta::from_micros(30));

    let mut b = SimBuilder::new(9820);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    // A synthesized multi-flow population so both shards own keys.
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec {
            src_mac: host_mac(0),
            dst_mac: host_mac(1),
            flows: FlowSet::synth(512, 0x0a90_0000, host_ip(1), 9_000),
            pick: FlowPick::Zipf(1.1),
            frame_len: 256,
            offered: Some(Rate::from_gbps(2)),
            arrival: Arrival::Paced,
            count: COUNT,
            seed: 31,
            flow_id_base: 0,
        },
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let mut servers = Vec::new();
    for (i, nic) in nics.iter_mut().enumerate() {
        let id = b.add_node(Box::new(nic.take().expect("server NIC built once")));
        b.connect(switch, PortId((2 + i) as u16), id, PortId(0), link);
        servers.push(id);
    }
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    // Shard 0's primary dies mid-workload (traffic spans ~600us) and comes
    // back with wiped DRAM half-way through.
    let victim = servers[0];
    sim.schedule_crash(victim, TimeDelta::from_micros(200));
    sim.schedule_restart(victim, TimeDelta::from_micros(500));
    sim.run_until(Time::from_millis(50));

    assert!(sim.crash_drops(victim) > 0, "crash never bit");
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<ShardedStateStoreProgram>();
    assert!(prog.is_quiescent(), "stuck window");
    assert!(!prog.is_degraded(), "the mirror must keep shard 0 alive");
    let stats = prog.shard_stats();
    for s in &stats {
        assert!(s.routed > 0, "shard {}: ring starved it of traffic", s.id);
    }
    let hit = stats.iter().find(|s| s.id == 0).expect("shard 0 exists");
    let s = &hit.faa;
    assert!(s.pool.failovers >= 1, "shard 0 never failed over: {s:?}");
    assert!(s.pool.rejoins >= 1, "shard 0 never rejoined: {s:?}");
    assert!(s.pool.probes >= 1, "shard 0 issued no probe: {s:?}");
    // Blast radius: the untouched shard must see no pool activity at all.
    let calm = stats.iter().find(|s| s.id == 1).expect("shard 1 exists");
    assert_eq!(calm.faa.pool.failovers, 0, "crash leaked into shard 1");
    assert_eq!(calm.faa.pool.rejoins, 0, "crash leaked into shard 1");
    for rep in 0..REPLICAS {
        assert_eq!(
            prog.engine(0).pool().health(rep),
            Health::Healthy,
            "shard 0 replica {rep} not healthy after rejoin: {s:?}"
        );
    }
    // Exactness: every shard's counters equal the routing oracle on both
    // replicas — the survivor through mirror fan-out, the rejoiner through
    // the reseed + delta replay.
    for shard in 0..SHARDS {
        let mut expected = vec![0u64; COUNTERS as usize];
        for (&(sh, slot), &v) in &prog.oracle {
            if sh == shard {
                expected[slot as usize] += v;
            }
        }
        for rep in 0..REPLICAS {
            let node = servers[shard as usize * REPLICAS + rep];
            let (rkey, base_va) = keys[shard as usize][rep];
            let dump = read_remote_counters(sim.node::<RnicNode>(node), rkey, base_va, COUNTERS);
            assert_eq!(
                dump, expected,
                "shard {shard} replica {rep}: counters must be exact"
            );
        }
    }
    assert_eq!(sim.node::<SinkNode>(sink).received, COUNT);
}

// ---------------------------------------------------------------------------
// Duplicate injection: the responder's PSN discipline must deduplicate.
// ---------------------------------------------------------------------------

#[test]
fn duplicate_storm_state_store_settles_exactly() {
    // 20% of packets on the memory-server link are delivered twice (in
    // both directions: duplicated FaA requests and duplicated ACKs), on
    // top of reordering. Responder-side PSN dedup must keep the settled
    // counters exact — a re-executed FaA would double-count.
    const COUNT: u64 = 600;
    let counters = 256u64;
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2),
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let rkey = channel.rkey;
    let base = channel.base_va;
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(
        channel,
        FaaConfig {
            reliable: true,
            rto: TimeDelta::from_micros(40),
            ..Default::default()
        },
    );
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));
    let mut b = SimBuilder::new(9900);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(prog),
    )));
    let gen = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec::simple(
            host_mac(0),
            host_mac(1),
            FiveTuple::new(host_ip(0), host_ip(1), 5000, 9000, 17),
            256,
            Rate::from_gbps(2),
            COUNT,
        ),
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), gen, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    let mut dupy = LinkSpec::testbed_40g();
    dupy.faults = FaultSpec {
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        duplicate_prob: 0.2,
        reorder_prob: 0.03,
        reorder_delay: TimeDelta::from_micros(3),
    };
    let srv_link = b.connect(switch, PortId(2), server, PortId(0), dupy);
    let mut sim = b.build();
    sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(50));

    let dups = sim.link_stats(srv_link, 0).duplicated_packets
        + sim.link_stats(srv_link, 1).duplicated_packets;
    assert!(dups > 0, "duplicate injection never bit");
    let sw: &SwitchNode = sim.node(switch);
    let prog = sw.program::<StateStoreProgram>();
    let s = prog.faa_stats();
    assert!(prog.is_quiescent(), "stuck window: {s:?}");
    assert!(!s.channel.failed_over, "{s:?}");
    let nic = sim.node::<RnicNode>(server);
    let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
    let truth: u64 = prog.oracle.values().sum();
    assert_eq!(remote, truth, "duplicates double-counted");
    assert_eq!(sim.node::<SinkNode>(sink).received, COUNT);
}

// ---------------------------------------------------------------------------
// Source guard: the copy-pasted resync hack must never reappear.
// ---------------------------------------------------------------------------

#[test]
fn no_ad_hoc_psn_resync_in_core() {
    // PR 3 replaced four copies of the same ad-hoc requester-side PSN
    // resync (and a save/restore dance around retransmits) with the shared
    // ReliableChannel. This guard keeps the pattern from creeping back:
    // primitives must never touch `qp.npsn` directly.
    let core_src = concat!(env!("CARGO_MANIFEST_DIR"), "/../core/src");
    let banned: &[&str] = &["npsn = roce.bth.psn", "saved_npsn"];
    let mut scanned = 0;
    for entry in std::fs::read_dir(core_src).expect("crates/core/src readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        // The reliability layer itself is the one legitimate owner of the
        // QP's PSN state.
        if path.file_name().and_then(|n| n.to_str()) == Some("channel.rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("source readable");
        for pat in banned {
            assert!(
                !text.contains(pat),
                "{} reintroduces the ad-hoc PSN resync pattern {pat:?}; \
                 route recovery through ReliableChannel instead",
                path.display()
            );
        }
        scanned += 1;
    }
    assert!(scanned >= 5, "guard scanned too few files ({scanned})");
}
