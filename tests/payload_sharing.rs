//! Payload-sharing semantics under simulation.
//!
//! The PR's zero-copy discipline rests on three properties, each pinned
//! here end to end:
//!
//! 1. **CoW isolation** — a bit flip injected into one in-flight copy of a
//!    packet must never show through to the sender's retained copy (or any
//!    other queue holding the same buffer).
//! 2. **Zero-copy forwarding** — moving a packet across store-and-forward
//!    hops must not allocate or copy payload buffers; the only allocations
//!    in a run are the per-packet construction costs, independent of hop
//!    count.
//! 3. **Determinism under load** — the high-load incast scenario produces
//!    identical statistics *and* event counts across same-seed runs.
//!
//! The alloc/CoW counters in `extmem_wire::bytes` are process-global, so
//! each counter-sensitive test holds a [`CounterSpan`], which serializes
//! the tests and scopes their deltas in one move.

use extmem_apps::incast::{run_incast, IncastConfig, RemoteBufferSpec};
use extmem_sim::{FaultSpec, LinkSpec, Node, NodeCtx, SimBuilder};
use extmem_types::{PortId, TimeDelta};
use extmem_wire::{CounterSpan, Packet};

/// Sends pre-built packets (constructed before the run so in-run allocation
/// deltas are attributable to the engine, not the workload) and keeps a
/// clone of each — the "sender's view" the CoW tests check.
struct Sender {
    to_send: Vec<Packet>,
    kept: Vec<Packet>,
}

impl Sender {
    fn new(packets: Vec<Packet>) -> Sender {
        Sender {
            kept: packets.clone(),
            to_send: packets,
        }
    }
}

impl Node for Sender {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if let Some(pkt) = self.to_send.pop() {
            ctx.start_tx(PortId(0), pkt);
        }
    }

    fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
        if let Some(pkt) = self.to_send.pop() {
            ctx.start_tx(PortId(0), pkt);
        }
    }

    fn name(&self) -> &str {
        "sender"
    }
}

/// Forwards everything arriving on port 0 out port 1 (a minimal
/// store-and-forward hop).
struct Forward {
    pending: std::collections::VecDeque<Packet>,
}

impl Node for Forward {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        if ctx.tx_busy(PortId(1)) {
            self.pending.push_back(packet);
        } else {
            ctx.start_tx(PortId(1), packet);
        }
    }

    fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId) {
        if let Some(pkt) = self.pending.pop_front() {
            ctx.start_tx(PortId(1), pkt);
        }
    }

    fn name(&self) -> &str {
        "forward"
    }
}

/// Collects delivered packets.
struct Capture {
    got: Vec<Packet>,
}

impl Node for Capture {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        self.got.push(packet);
    }

    fn name(&self) -> &str {
        "capture"
    }
}

/// Build a sender → N forwarding hops → capture chain and run `packets`
/// pre-built 1500 B packets through it. Returns (kept sender copies,
/// received packets, alloc delta, cow delta, digest delta) measured across
/// the run only — the internal [`CounterSpan`] both scopes the deltas and
/// serializes counter-sensitive tests.
fn run_chain(
    hops: usize,
    packets: Vec<Packet>,
    faults: FaultSpec,
) -> (Vec<Packet>, Vec<Packet>, u64, u64, u64) {
    let n = packets.len() as u64;
    let mut b = SimBuilder::new(7);
    let sender = b.add_node(Box::new(Sender::new(packets)));
    let fwds: Vec<_> = (0..hops)
        .map(|_| {
            b.add_node(Box::new(Forward {
                pending: Default::default(),
            }))
        })
        .collect();
    let cap = b.add_node(Box::new(Capture { got: Vec::new() }));

    let mut spec = LinkSpec::testbed_40g();
    spec.faults = faults;
    // Faults only on the first link; the rest are clean.
    let mut prev = (sender, PortId(0));
    for (i, &f) in fwds.iter().enumerate() {
        let s = if i == 0 {
            spec
        } else {
            LinkSpec::testbed_40g()
        };
        b.connect(prev.0, prev.1, f, PortId(0), s);
        prev = (f, PortId(1));
    }
    let tail = if hops == 0 {
        spec
    } else {
        LinkSpec::testbed_40g()
    };
    b.connect(prev.0, prev.1, cap, PortId(0), tail);

    let mut sim = b.build();
    sim.schedule_timer(sender, TimeDelta::ZERO, 0);
    let span = CounterSpan::begin();
    sim.run_to_quiescence();
    let (allocs, cows, digests) = (span.allocs(), span.cows(), span.digests());
    drop(span);
    let got = std::mem::take(&mut sim.node_mut::<Capture>(cap).got);
    let kept = std::mem::take(&mut sim.node_mut::<Sender>(sender).kept);
    assert_eq!(got.len() as u64, n, "all packets delivered");
    (kept, got, allocs, cows, digests)
}

fn test_packets(count: usize) -> Vec<Packet> {
    (0..count)
        .map(|i| {
            let mut bytes = vec![0u8; 1500];
            for (j, b) in bytes.iter_mut().enumerate() {
                *b = (i * 31 + j) as u8;
            }
            Packet::from_vec(bytes)
        })
        .collect()
}

#[test]
fn forwarding_does_not_allocate_or_copy() {
    // 20 packets across 4 store-and-forward hops: the engine must move the
    // shared buffers without a single new allocation or CoW copy, even
    // though the sender still holds a clone of every packet.
    let (kept, got, allocs, cows, _) = run_chain(4, test_packets(20), FaultSpec::default());
    assert_eq!(allocs, 0, "forwarding allocated payload buffers");
    assert_eq!(cows, 0, "forwarding copied payload buffers");
    for (k, g) in kept.iter().rev().zip(&got) {
        assert_eq!(k.as_slice(), g.as_slice());
    }
}

#[test]
fn hop_count_does_not_change_allocations() {
    let clean = FaultSpec::default();
    let (_, _, a1, _, _) = run_chain(1, test_packets(10), clean);
    let (_, _, a5, _, _) = run_chain(5, test_packets(10), clean);
    assert_eq!(a1, a5, "allocations must be independent of path length");
    assert_eq!(a1, 0);
}

#[test]
fn corrupting_one_in_flight_copy_is_isolated() {
    // Every packet is corrupted on the first link while the sender holds a
    // clone: the flip must CoW exactly once per packet and the sender's
    // copies must stay pristine all the way through delivery.
    let faults = FaultSpec {
        drop_prob: 0.0,
        corrupt_prob: 1.0,
        ..FaultSpec::NONE
    };
    let (kept, got, allocs, cows, _) = run_chain(2, test_packets(8), faults);
    assert_eq!(cows, 8, "one CoW per corrupted packet");
    assert_eq!(allocs, 8, "the CoW copy is the only allocation");
    // Sender pops from the back; deliveries arrive in reverse kept order.
    for (k, g) in kept.iter().rev().zip(&got) {
        let flipped: u32 = k
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(
            flipped, 1,
            "received copy differs by exactly the injected bit"
        );
    }
    // And the kept copies are byte-identical to what was constructed.
    for (i, k) in kept.iter().enumerate() {
        let expect = test_packets(kept.len()).remove(i);
        assert_eq!(k.as_slice(), expect.as_slice(), "sender's view mutated");
    }
}

#[test]
fn corruption_of_unshared_packet_mutates_in_place() {
    // Control for the CoW accounting: when nobody else holds the buffer,
    // the injector's flip must happen in place (no copy, no allocation).
    struct Blast {
        left: u32,
    }
    impl Node for Blast {
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, _packet: Packet) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _t: u64) {
            if self.left > 0 {
                self.left -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(256));
            }
        }
        fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, _p: PortId) {
            if self.left > 0 {
                self.left -= 1;
                ctx.start_tx(PortId(0), Packet::zeroed(256));
            }
        }
        fn name(&self) -> &str {
            "blast"
        }
    }
    let mut b = SimBuilder::new(3);
    let s = b.add_node(Box::new(Blast { left: 16 }));
    let c = b.add_node(Box::new(Capture { got: Vec::new() }));
    let mut spec = LinkSpec::testbed_40g();
    spec.faults = FaultSpec {
        drop_prob: 0.0,
        corrupt_prob: 1.0,
        ..FaultSpec::NONE
    };
    b.connect(s, PortId(0), c, PortId(0), spec);
    let mut sim = b.build();
    sim.schedule_timer(s, TimeDelta::ZERO, 0);
    let span = CounterSpan::begin();
    sim.run_to_quiescence();
    assert_eq!(span.cows(), 0, "unique buffers must be flipped in place");
    assert_eq!(sim.node::<Capture>(c).got.len(), 16);
}

#[test]
fn multi_hop_forwarding_digests_each_packet_once() {
    // The trace folds every delivery's content digest, but the digest is
    // cached in the packet: 12 packets across 5 hops (6 deliveries each)
    // must cost exactly 12 cold digest computations, not 72.
    let (kept, got, _, _, digests) = run_chain(5, test_packets(12), FaultSpec::default());
    assert_eq!(digests, 12, "digest must be computed once per packet");
    drop((kept, got));

    // A CoW mutation in flight invalidates only the wire copy's cache: the
    // corrupted packet re-digests on the hop after the flip, so the cold
    // count grows by at most one extra per packet — and the digests of the
    // sender's kept copies still match the original bytes.
    let faults = FaultSpec {
        drop_prob: 0.0,
        corrupt_prob: 1.0,
        ..FaultSpec::NONE
    };
    let (kept, got, _, _, digests) = run_chain(2, test_packets(8), faults);
    assert_eq!(
        digests, 8,
        "flip happens before the first digest; one compute per packet"
    );
    for (k, g) in kept.iter().rev().zip(&got) {
        assert_ne!(
            k.digest(),
            g.digest(),
            "corrupted copy must digest differently"
        );
    }
}

#[test]
fn high_load_incast_is_deterministic_event_for_event() {
    // The runs inflate the process-global counters; holding a (otherwise
    // unread) span keeps them out of the other tests' measurement windows.
    let _span = CounterSpan::begin();
    // Two same-seed runs of the 8-sender line-rate incast (with the
    // remote-buffer detour engaged) must agree on every statistic,
    // including the total event and per-hop packet counts — the strongest
    // cheap proxy for "the schedules were identical".
    let cfg = || IncastConfig::small(Some(RemoteBufferSpec::default()));
    let r1 = run_incast(cfg());
    let r2 = run_incast(cfg());
    assert_eq!(r1.sent, r2.sent);
    assert_eq!(r1.delivered, r2.delivered);
    assert_eq!(r1.tm_drops, r2.tm_drops);
    assert_eq!(r1.reorders, r2.reorders);
    assert_eq!(r1.completion, r2.completion);
    assert_eq!(r1.peak_buffer, r2.peak_buffer);
    assert_eq!(r1.pb.stored, r2.pb.stored);
    assert_eq!(r1.pb.loaded, r2.pb.loaded);
    assert_eq!(
        r1.events, r2.events,
        "event counts diverged between same-seed runs"
    );
    assert_eq!(r1.hop_packets, r2.hop_packets);
    assert!(
        r1.events > 10_000,
        "incast should be a substantial run: {}",
        r1.events
    );
    assert_eq!(r1.delivered, r1.sent, "detour keeps the incast lossless");
}
