//! Property-based tests of the primitives' core invariants, driven through
//! complete simulated topologies:
//!
//! * **packet buffer**: for arbitrary burst shapes and thresholds, delivery
//!   is complete and strictly in order (loss-free links),
//! * **state store**: for arbitrary traffic mixes and issuing disciplines,
//!   remote counters converge to the exact ground truth,
//! * **traffic manager**: shared-buffer accounting never over-commits,
//! * **cuckoo lookup directory**: arbitrary insert/delete/lookup
//!   interleavings (including forced relocation chains and table-full
//!   rejection) match a `HashMap` reference exactly, the filter's probe
//!   choice always points at the bucket holding each key, and replaying
//!   every plan step-by-step against a byte region plus live filter never
//!   makes a resident key transiently unfindable.

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::cuckoo::{
    decode_slot, encode_slot, probe_with, slot_va, CuckooConfig, CuckooDirectory, Step,
    BUCKET_BYTES, SLOTS_PER_BUCKET, SLOT_BYTES,
};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::lookup::ActionEntry;
use extmem_core::packet_buffer::{Mode, PacketBufferProgram};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, RdmaChannel};
use extmem_switch::ChoiceFilter;
use std::collections::HashMap;
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode, TrafficManager};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};
use extmem_wire::Packet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Packet-buffer FIFO invariant under arbitrary (loss-free) conditions.
    #[test]
    fn packet_buffer_delivers_everything_in_order(
        count in 20u32..300,
        frame in 100usize..1500,
        offered_gbps in 5u64..39,
        sink_gbps in 5u64..39,
        start_kb in 2u64..64,
        window in 1u64..16,
        seed in 0u64..1000,
    ) {
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
        let channel = RdmaChannel::setup(
            switch_endpoint(),
            PortId(2),
            &mut nic,
            ByteSize::from_mb(4),
        );
        let mut fib = Fib::new(8);
        fib.install(host_mac(0), PortId(0));
        fib.install(host_mac(1), PortId(1));
        let prog = PacketBufferProgram::new(
            fib,
            vec![channel],
            PortId(1),
            2048,
            Mode::Auto {
                start_store_qbytes: start_kb * 1024,
                resume_load_qbytes: start_kb * 512,
            },
            window,
            TimeDelta::from_micros(200),
        );
        let flow = FiveTuple::new(host_ip(0), host_ip(1), 40_000, 9_000, 17);
        let mut b = SimBuilder::new(seed);
        let switch = b.add_node(Box::new(SwitchNode::new(
            "tor",
            SwitchConfig::default(),
            Box::new(prog),
        )));
        let gen = b.add_node(Box::new(TrafficGenNode::new(
            "gen",
            WorkloadSpec::simple(
                host_mac(0),
                host_mac(1),
                flow,
                frame,
                Rate::from_gbps(offered_gbps),
                count as u64,
            ),
        )));
        let sink = b.add_node(Box::new(SinkNode::new("sink")));
        b.connect(switch, PortId(0), gen, PortId(0), LinkSpec::testbed_40g());
        b.connect(
            switch,
            PortId(1),
            sink,
            PortId(0),
            LinkSpec::new(Rate::from_gbps(sink_gbps), TimeDelta::from_nanos(300)),
        );
        let srv = b.add_node(Box::new(nic));
        b.connect(switch, PortId(2), srv, PortId(0), LinkSpec::testbed_40g());
        let mut sim = b.build();
        sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
        sim.run_until(Time::from_millis(200));

        let sink = sim.node::<SinkNode>(sink);
        let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
        let stats = sw.program::<PacketBufferProgram>().stats();
        // Offered rates below the NIC store ceiling (~34G for 1500B, lower
        // fraction of demand detours at smaller frames) may still overrun
        // the NIC at extreme combinations; only require completeness when
        // nothing was dropped anywhere.
        let nic_stats = sim.node::<RnicNode>(srv).stats();
        if nic_stats.rx_overflow_drops == 0 && sw.tm().total_drops() == 0 {
            prop_assert_eq!(
                sink.received,
                count as u64,
                "lost frames without any drop being accounted; pb stats {:?}",
                stats
            );
        }
        // Ordering must hold unconditionally (drops may thin the sequence
        // but never permute it).
        prop_assert_eq!(sink.total_reorders(), 0);
        prop_assert_eq!(sink.corrupt, 0);
    }

    /// State-store conservation: remote + in-transit == ground truth at
    /// every checkpoint; exact equality after settling.
    #[test]
    fn state_store_counts_exactly(
        count in 50u32..800,
        n_flows in 1usize..24,
        offered_gbps in 1u64..38,
        window in 1usize..16,
        batch in 1u64..32,
        seed in 0u64..1000,
    ) {
        let counters = 512u64;
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
        let channel = RdmaChannel::setup(
            switch_endpoint(),
            PortId(2),
            &mut nic,
            ByteSize::from_bytes(counters * 8),
        );
        let rkey = channel.rkey;
        let base = channel.base_va;
        let mut fib = Fib::new(8);
        fib.install(host_mac(0), PortId(0));
        fib.install(host_mac(1), PortId(1));
        let engine = FaaEngine::new(
            channel,
            FaaConfig { max_outstanding: window, min_batch: batch, ..Default::default() },
        );
        let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(30));

        let flows: Vec<FiveTuple> = (0..n_flows)
            .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 6000 + i as u16, 9000, 17))
            .collect();
        let mut b = SimBuilder::new(seed);
        let switch = b.add_node(Box::new(SwitchNode::new(
            "tor",
            SwitchConfig::default(),
            Box::new(prog),
        )));
        let gen = b.add_node(Box::new(TrafficGenNode::new(
            "gen",
            WorkloadSpec {
                src_mac: host_mac(0),
                dst_mac: host_mac(1),
                flows: flows.into(),
                pick: FlowPick::Uniform,
                frame_len: 128,
                offered: Some(Rate::from_gbps(offered_gbps)),
                arrival: extmem_apps::workload::Arrival::Paced,
                count: count as u64,
                seed: seed ^ 0xaa,
                flow_id_base: 0,
            },
        )));
        let sink = b.add_node(Box::new(SinkNode::new("sink")));
        let link = LinkSpec::testbed_40g();
        b.connect(switch, PortId(0), gen, PortId(0), link);
        b.connect(switch, PortId(1), sink, PortId(0), link);
        let srv = b.add_node(Box::new(nic));
        b.connect(switch, PortId(2), srv, PortId(0), link);
        let mut sim = b.build();
        sim.schedule_timer(gen, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);

        // Mid-run checkpoint: the conservation bounds hold at an arbitrary
        // instant. `remote + pending <= truth` (executed plus never-sent
        // can't exceed ground truth); `truth <= remote + in_transit`
        // (nothing vanishes — an outstanding value may overlap `remote`
        // during its execute→ACK window, so that side is an inequality).
        sim.run_until(Time::from_micros(200));
        {
            let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
            let prog = sw.program::<StateStoreProgram>();
            let nic = sim.node::<RnicNode>(srv);
            let remote: u64 = read_remote_counters(nic, rkey, base, counters).iter().sum();
            let truth: u64 = prog.oracle.values().sum();
            prop_assert!(remote + prog.pending_sum() <= truth, "overcount");
            prop_assert!(truth <= remote + prog.in_transit(), "updates vanished");
        }

        // Settle and require exactness.
        sim.run_until(Time::from_millis(60));
        let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
        let prog = sw.program::<StateStoreProgram>();
        prop_assert!(prog.is_quiescent(), "updates still pending: {:?}", prog.faa_stats());
        let nic = sim.node::<RnicNode>(srv);
        let remote = read_remote_counters(nic, rkey, base, counters);
        for (slot, &expect) in &prog.oracle {
            prop_assert_eq!(remote[*slot as usize], expect, "slot {} wrong", slot);
        }
        prop_assert_eq!(nic.stats().cpu_packets, 0);
    }

    /// TM shared-buffer accounting stays consistent for arbitrary
    /// enqueue/dequeue interleavings.
    #[test]
    fn tm_accounting_invariants(
        ops in proptest::collection::vec((any::<bool>(), 0u16..4, 40usize..2000), 1..400),
        cap_kb in 1u64..64,
    ) {
        let mut tm = TrafficManager::new(4, ByteSize::from_kb(cap_kb));
        for (enq, port, size) in ops {
            if enq {
                let _ = tm.enqueue(PortId(port), Packet::zeroed(size));
            } else {
                let _ = tm.dequeue(PortId(port));
            }
            tm.check_invariants();
            prop_assert!(tm.total_bytes() <= tm.capacity());
        }
    }
}

/// Execute a relocation plan against a byte region and a live filter the
/// way the data plane does (filter flips at WRITE-issue time, Move sources
/// left stale until reclaimed), asserting after **every** step that each
/// key in `must_find` resolves in exactly one filter-steered bucket probe.
fn replay_cuckoo_plan(
    region: &mut [u8],
    live: &mut ChoiceFilter,
    buckets: u64,
    steps: &[Step],
    must_find: &HashMap<extmem_types::FiveTuple, ActionEntry>,
) -> Result<(), TestCaseError> {
    for step in steps {
        match *step {
            Step::Write {
                key,
                action,
                to,
                filter_add,
            } => {
                let off = slot_va(0, to) as usize;
                region[off..off + SLOT_BYTES].copy_from_slice(&encode_slot(&key, &action));
                if filter_add {
                    live.insert(&key);
                }
            }
            Step::Move {
                key, action, to, ..
            } => {
                let off = slot_va(0, to) as usize;
                region[off..off + SLOT_BYTES].copy_from_slice(&encode_slot(&key, &action));
                live.insert(&key);
            }
            Step::Clear { at, filter_sub } => {
                let off = slot_va(0, at) as usize;
                region[off..off + SLOT_BYTES].fill(0);
                if let Some(key) = filter_sub {
                    live.remove(&key);
                }
            }
        }
        for key in must_find.keys() {
            let b = probe_with(live, key, buckets) as usize;
            let found = (0..SLOTS_PER_BUCKET).any(|s| {
                let off = b * BUCKET_BYTES + s * SLOT_BYTES;
                decode_slot(&region[off..off + SLOT_BYTES]).is_some_and(|(k, _)| k == *key)
            });
            prop_assert!(
                found,
                "key {key:?} transiently unfindable after step {step:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The cuckoo directory against a `HashMap` oracle: every interleaving
    /// of inserts (fresh + in-place updates), deletes, and lookups agrees
    /// with the reference; the filter steers every probe to the bucket
    /// actually holding the key; table-full rejections mutate nothing; and
    /// the byte region replayed plan-by-plan converges to the directory's
    /// image with no key ever transiently unfindable.
    #[test]
    fn cuckoo_directory_matches_hashmap_oracle(
        small in any::<bool>(),
        ops in proptest::collection::vec((0u8..3, 0u16..48, 0u8..64), 24..80),
    ) {
        // 8 buckets = 32 slots against a 48-key universe forces relocation
        // chains and genuine table-full rejections; 16 buckets exercises
        // the sparser regime where most inserts land primary.
        let cfg = CuckooConfig {
            buckets: if small { 8 } else { 16 },
            filter_cells: 512,
            filter_hashes: 2,
            max_plan_steps: 64,
        };
        let mut dir = CuckooDirectory::new(cfg);
        let mut oracle: HashMap<FiveTuple, ActionEntry> = HashMap::new();
        let mut region = vec![0u8; dir.region_bytes() as usize];
        let mut live = dir.filter().clone();
        let buckets = dir.config().buckets;
        let key_of = |i: u16| FiveTuple::new(host_ip(0), host_ip(1), 40_000 + i, 80, 17);

        for (sel, ki, ab) in ops {
            let key = key_of(ki);
            let action = ActionEntry::set_dscp(ab & 0x3f);
            if sel < 2 {
                // Mid-plan findability covers keys resident *before* the op;
                // the inserted key itself must be findable once it completes.
                let mut must_find = oracle.clone();
                must_find.remove(&key);
                match dir.plan_insert(key, action) {
                    Ok(plan) => {
                        replay_cuckoo_plan(&mut region, &mut live, buckets, &plan.steps, &must_find)?;
                        oracle.insert(key, action);
                    }
                    Err(_) => {
                        // Rejection must leave zero net mutation — the
                        // oracle sweep below verifies the rollback. Leave a
                        // breadcrumb that the regime was actually loaded.
                        prop_assert!(
                            dir.len() * 2 >= dir.capacity(),
                            "table-full below 50% load ({} / {})",
                            dir.len(),
                            dir.capacity()
                        );
                    }
                }
            } else {
                let mut must_find = oracle.clone();
                must_find.remove(&key);
                let plan = dir.plan_remove(&key);
                prop_assert_eq!(plan.is_some(), oracle.contains_key(&key));
                if let Some(plan) = plan {
                    replay_cuckoo_plan(&mut region, &mut live, buckets, &plan.steps, &must_find)?;
                    oracle.remove(&key);
                }
            }

            dir.check_invariants();
            prop_assert_eq!(dir.len(), oracle.len());
            for (k, a) in &oracle {
                prop_assert_eq!(dir.lookup(k), Some(*a), "oracle key {:?} wrong", k);
                let pos = dir.position(k).expect("resident key has a slot");
                prop_assert_eq!(
                    dir.probe(k), pos.bucket,
                    "probe points away from {:?}'s bucket", k
                );
            }
            for i in 0..48u16 {
                let k = key_of(i);
                if !oracle.contains_key(&k) {
                    prop_assert_eq!(dir.lookup(&k), None);
                }
            }
        }

        // The replayed region and live filter converge to the directory's
        // authoritative image.
        prop_assert_eq!(&region, &dir.encode_region(), "region diverged");
        prop_assert_eq!(live.raw_counts(), dir.filter().raw_counts(), "live filter diverged");
    }
}
