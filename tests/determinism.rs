//! Determinism: the whole point of a simulation substrate is that runs are
//! reproducible. Same topology + same seed ⇒ byte-identical packet traces.

use extmem_apps::incast::{run_incast, IncastConfig, RemoteBufferSpec};
use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::state_store::StateStoreProgram;
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder, Simulator};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

/// A full state-store scenario, returning the simulator for digesting.
fn statestore_sim(seed: u64) -> Simulator {
    let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_kb(8));
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(channel, FaaConfig::default());
    let prog = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(50));

    let mut b = SimBuilder::new(seed);
    let switch = b.add_node(Box::new(extmem_switch::SwitchNode::new(
        "tor",
        extmem_switch::SwitchConfig::default(),
        Box::new(prog),
    )));
    let flows: Vec<FiveTuple> = (0..8)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 7000 + i, 9000, 17))
        .collect();
    let sender = b.add_node(Box::new(TrafficGenNode::new(
        "gen",
        WorkloadSpec {
            src_mac: host_mac(0),
            dst_mac: host_mac(1),
            flows: flows.into(),
            pick: FlowPick::Uniform,
            frame_len: 200,
            offered: Some(Rate::from_gbps(20)),
            arrival: extmem_apps::workload::Arrival::Paced,
            count: 1_000,
            seed: seed ^ 0xfeed,
            flow_id_base: 0,
        },
    )));
    let sink = b.add_node(Box::new(SinkNode::new("sink")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), sender, PortId(0), link);
    b.connect(switch, PortId(1), sink, PortId(0), link);
    let srv = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), srv, PortId(0), link);
    let mut sim = b.build();
    sim.schedule_timer(sender, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim
}

#[test]
fn same_seed_same_trace_digest() {
    let mut a = statestore_sim(1234);
    let mut b = statestore_sim(1234);
    a.run_until(Time::from_millis(2));
    b.run_until(Time::from_millis(2));
    assert_eq!(a.trace_digest(), b.trace_digest());
    assert_eq!(a.events_processed(), b.events_processed());
    assert_ne!(
        a.trace_digest(),
        0xcbf2_9ce4_8422_2325,
        "digest never updated"
    );
}

#[test]
fn different_seed_different_digest() {
    let mut a = statestore_sim(1);
    let mut b = statestore_sim(2);
    a.run_until(Time::from_millis(2));
    b.run_until(Time::from_millis(2));
    assert_ne!(a.trace_digest(), b.trace_digest());
}

#[test]
fn incast_results_are_reproducible() {
    let r1 = run_incast(IncastConfig::small(Some(RemoteBufferSpec::default())));
    let r2 = run_incast(IncastConfig::small(Some(RemoteBufferSpec::default())));
    assert_eq!(r1.delivered, r2.delivered);
    assert_eq!(r1.completion, r2.completion);
    assert_eq!(r1.pb.stored, r2.pb.stored);
    assert_eq!(r1.peak_buffer, r2.peak_buffer);
}

#[test]
fn fault_injection_is_seed_deterministic() {
    // Two identical lossy runs must agree event-for-event.
    let run = |seed| {
        let mut nic = RnicNode::new("memsrv", RnicConfig::at(host_endpoint(1)));
        let (qp, rkey, base) = extmem_rnic::requester::setup_channel(
            host_endpoint(0),
            extmem_types::QpNum(0x42),
            &mut nic,
            ByteSize::from_mb(1),
        );
        let blaster = extmem_rnic::requester::WriteBlaster::new(
            "blaster",
            qp,
            rkey,
            base,
            1_000_000,
            1000,
            Rate::from_gbps(20),
            500,
        );
        let mut b = SimBuilder::new(seed);
        let bl = b.add_node(Box::new(blaster));
        let sv = b.add_node(Box::new(nic));
        let mut spec = LinkSpec::testbed_40g();
        spec.faults = extmem_sim::FaultSpec {
            drop_prob: 0.1,
            corrupt_prob: 0.05,
            ..extmem_sim::FaultSpec::NONE
        };
        b.connect(bl, PortId(0), sv, PortId(0), spec);
        let mut sim = b.build();
        sim.schedule_timer(bl, TimeDelta::ZERO, 1);
        sim.run_to_quiescence();
        (sim.trace_digest(), sim.node::<RnicNode>(sv).stats())
    };
    let (d1, s1) = run(99);
    let (d2, s2) = run(99);
    assert_eq!(d1, d2);
    assert_eq!(s1, s2);
    assert!(
        s1.malformed_drops > 0,
        "corruption should have been injected: {s1:?}"
    );
}
