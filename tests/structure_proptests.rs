//! Property-based tests for the switch-side data structures and the sketch
//! estimators, checked against reference models.

use extmem_core::sketch::{estimate, SketchGeometry, SketchKind};
use extmem_core::trace_store::{TraceRecord, RECORD_LEN};
use extmem_switch::hash::{flow_sign, salted_flow_index};
use extmem_switch::table::{ExactMatchTable, Replacement};
use extmem_switch::{ChoiceFilter, RegisterArray};
use extmem_types::{FiveTuple, Time};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference LRU: a map plus an explicit recency list.
struct ModelLru {
    cap: usize,
    entries: Vec<(u32, u64)>, // most-recent last
}

impl ModelLru {
    fn lookup(&mut self, k: u32) -> Option<u64> {
        let pos = self.entries.iter().position(|&(ek, _)| ek == k)?;
        let e = self.entries.remove(pos);
        self.entries.push(e);
        Some(e.1)
    }

    fn insert(&mut self, k: u32, v: u64) {
        if let Some(pos) = self.entries.iter().position(|&(ek, _)| ek == k) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.cap {
            self.entries.remove(0); // least recently used
        }
        self.entries.push((k, v));
    }
}

proptest! {
    /// The LRU table behaves exactly like the reference model for any
    /// interleaving of lookups and inserts.
    #[test]
    fn lru_table_matches_reference_model(
        cap in 1usize..12,
        ops in proptest::collection::vec((any::<bool>(), 0u32..24, any::<u64>()), 1..300),
    ) {
        let mut real: ExactMatchTable<u32, u64> = ExactMatchTable::new(cap, Replacement::Lru);
        let mut model = ModelLru { cap, entries: Vec::new() };
        for (is_insert, k, v) in ops {
            if is_insert {
                prop_assert!(real.insert(k, v), "LRU insert can never fail");
                model.insert(k, v);
            } else {
                let got = real.lookup(&k).copied();
                let want = model.lookup(k);
                prop_assert_eq!(got, want, "lookup({}) diverged", k);
            }
            prop_assert_eq!(real.len(), model.entries.len());
        }
    }

    /// Register-array ops agree with plain u64 arithmetic.
    #[test]
    fn register_array_matches_scalar_model(
        size in 1usize..16,
        ops in proptest::collection::vec((0u8..4, any::<prop::sample::Index>(), any::<u64>()), 1..200),
    ) {
        let mut real = RegisterArray::new("prop", size);
        let mut model = vec![0u64; size];
        for (op, idx, v) in ops {
            let i = idx.index(size);
            match op {
                0 => {
                    real.write(i, v);
                    model[i] = v;
                }
                1 => prop_assert_eq!(real.add(i, v), {
                    model[i] = model[i].wrapping_add(v);
                    model[i]
                }),
                2 => prop_assert_eq!(real.exchange(i, v), {
                    let old = model[i];
                    model[i] = v;
                    old
                }),
                _ => prop_assert_eq!(real.read(i), model[i]),
            }
        }
        prop_assert_eq!(real.sum(), model.iter().fold(0u64, |a, &b| a.wrapping_add(b)));
    }

    /// Count-Min never underestimates, for arbitrary flow multisets.
    #[test]
    fn count_min_never_underestimates(
        flows in proptest::collection::vec((0u32..64, 1u64..50), 1..40),
        rows in 2u32..6,
        cols in 16u64..256,
    ) {
        let g = SketchGeometry { rows, cols };
        let mut counters = vec![0u64; (rows as u64 * cols) as usize];
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for &(f, n) in &flows {
            *truth.entry(f).or_insert(0) += n;
            let ft = key(f);
            for row in 0..rows {
                counters[g.slot(row, &ft) as usize] += n;
            }
        }
        for (&f, &n) in &truth {
            let est = estimate(SketchKind::CountMin, &g, &counters, &key(f));
            prop_assert!(est >= n as i64, "flow {} est {} < truth {}", f, est, n);
        }
    }

    /// Count Sketch applied to a single flow returns it exactly
    /// (sign * sign = 1 in every row).
    #[test]
    fn count_sketch_single_flow_is_exact(f in 0u32..1000, n in 1u64..1000) {
        let g = SketchGeometry { rows: 5, cols: 64 };
        let mut counters = vec![0u64; (5 * 64) as usize];
        let ft = key(f);
        for row in 0..5 {
            let v = flow_sign(&ft, row) as u64;
            let slot = g.slot(row, &ft) as usize;
            for _ in 0..n {
                counters[slot] = counters[slot].wrapping_add(v);
            }
        }
        prop_assert_eq!(estimate(SketchKind::CountSketch, &g, &counters, &ft), n as i64);
    }

    /// Trace records round-trip for arbitrary field values.
    #[test]
    fn trace_record_roundtrip(
        seq: u64,
        ps: u64,
        src: u32,
        dst: u32,
        sp: u16,
        dp: u16,
        proto: u8,
        len: u16,
    ) {
        let r = TraceRecord {
            seq,
            at: Time::from_picos(ps),
            flow: FiveTuple::new(src, dst, sp, dp, proto),
            frame_len: len,
        };
        let b = r.to_bytes();
        prop_assert_eq!(b.len(), RECORD_LEN);
        prop_assert_eq!(TraceRecord::from_bytes(&b), r);
    }

    /// Salted row hashes resolve (almost all) single-salt collisions and
    /// stay in range.
    #[test]
    fn salted_hashes_are_bounded_and_salt_sensitive(a in 0u32..5000, b2 in 0u32..5000, cols in 8u64..512) {
        prop_assume!(a != b2);
        let (fa, fb) = (key(a), key(b2));
        for salt in 0..4 {
            prop_assert!(salted_flow_index(&fa, salt, cols) < cols);
        }
        // If they collide under every one of 6 salts, something is linear.
        let all_collide = (0..6).all(|s| {
            salted_flow_index(&fa, s, cols) == salted_flow_index(&fb, s, cols)
        });
        prop_assert!(!all_collide, "flows {:?} vs {:?} collide under all salts", fa, fb);
    }
}

/// Remote-LPM layout vs a reference software LPM: for random route sets
/// and random addresses, reading the rung arrays longest-first must agree
/// with the obvious longest-prefix scan (hash collisions avoided by sizing
/// the rungs generously and skipping colliding route sets).
mod lpm_model {
    use extmem_core::channel::RdmaChannel;
    use extmem_core::lookup::{ActionEntry, ActionKind, ACTION_LEN};
    use extmem_core::lpm::{install_remote_route, mask, slots_per_level};
    use extmem_rnic::{RnicConfig, RnicNode};
    use extmem_switch::hash::hash_to_index;
    use extmem_types::{ByteSize, PortId};
    use extmem_wire::roce::RoceEndpoint;
    use extmem_wire::MacAddr;
    use proptest::prelude::*;

    const LEVELS: [u8; 3] = [32, 24, 16];

    fn rung_key(level: u8, dst: u32) -> [u8; 5] {
        let mut k = [0u8; 5];
        k[0] = level;
        k[1..5].copy_from_slice(&mask(dst, level).to_be_bytes());
        k
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn remote_layout_agrees_with_reference_lpm(
            routes in proptest::collection::vec(
                (any::<u32>(), prop::sample::select(vec![32u8, 24, 16]), 1u8..63),
                1..12,
            ),
            probes in proptest::collection::vec(any::<u32>(), 1..24),
        ) {
            let server = RoceEndpoint { mac: MacAddr::local(9), ip: 9 };
            let switch = RoceEndpoint { mac: MacAddr::local(1), ip: 1 };
            let mut nic = RnicNode::new("srv", RnicConfig::at(server));
            let region = ByteSize::from_mb(2);
            let channel = RdmaChannel::setup(switch, PortId(2), &mut nic, region);
            let spl = slots_per_level(region.bytes(), &LEVELS);

            // Skip route sets with intra-rung slot collisions between
            // *different* prefixes (direct-indexed tables can't hold both).
            let mut slot_owner: std::collections::HashMap<(u8, u64), u32> = Default::default();
            let mut deduped: Vec<(u32, u8, u8)> = Vec::new();
            for &(p, l, d) in &routes {
                let m = mask(p, l);
                let slot = hash_to_index(&rung_key(l, m), spl);
                match slot_owner.get(&(l, slot)) {
                    Some(&owner) if owner != m => prop_assume!(false),
                    Some(_) => {} // same prefix re-installed: last write wins
                    None => {
                        slot_owner.insert((l, slot), m);
                    }
                }
                deduped.push((m, l, d));
            }
            for &(m, l, d) in &deduped {
                install_remote_route(&mut nic, &channel, &LEVELS, spl, m, l, ActionEntry::set_dscp(d));
            }

            for &addr in &probes {
                // Reference: longest prefix among installed routes.
                let expect = LEVELS
                    .iter()
                    .filter_map(|&l| {
                        deduped
                            .iter()
                            .rev() // last install wins
                            .find(|&&(m, rl, _)| rl == l && mask(addr, l) == m)
                            .map(|&(_, _, d)| d)
                    })
                    .next();
                // "Data plane": read the rung arrays longest-first.
                let got = LEVELS.iter().enumerate().find_map(|(i, &l)| {
                    let slot = hash_to_index(&rung_key(l, addr), spl);
                    let va = channel.base_va
                        + (i as u64 * spl + slot) * ACTION_LEN as u64;
                    let b = nic.region(channel.rkey).read(va, ACTION_LEN as u64).unwrap();
                    let a = ActionEntry::from_bytes(b.try_into().unwrap());
                    (a.kind != ActionKind::None).then_some(a.dscp)
                });
                // A probe may alias an installed slot by hash collision;
                // only require agreement when the reference has an answer
                // or the slot scan found nothing (false positives from
                // collisions are an accepted property of direct-indexed
                // tables, filtered here).
                match (expect, got) {
                    (Some(e), Some(g)) => prop_assert_eq!(e, g, "wrong rung for {:#x}", addr),
                    (Some(_), None) => prop_assert!(false, "missed route for {:#x}", addr),
                    _ => {}
                }
            }
        }
    }
}

fn key(f: u32) -> FiveTuple {
    FiveTuple::new(
        0x0a00_0000 + f,
        0x0a63_0001,
        (2000 + f % 30000) as u16,
        80,
        17,
    )
}

mod event_queue {
    use extmem_sim::event::{EventKind, EventQueue};
    use extmem_types::{NodeId, Time};
    use proptest::prelude::*;

    /// Reference model: a plain sorted list popped at the `(at, seq)`
    /// minimum — the total order the indexed queue must preserve exactly.
    #[derive(Default)]
    struct ModelQueue {
        pending: Vec<(Time, u64, u64)>, // (at, seq, token)
        next_seq: u64,
    }

    impl ModelQueue {
        fn push(&mut self, at: Time, token: u64) {
            self.pending.push((at, self.next_seq, token));
            self.next_seq += 1;
        }

        fn pop(&mut self) -> Option<(Time, u64, u64)> {
            let min = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, seq, _))| (at, seq))?
                .0;
            Some(self.pending.remove(min))
        }
    }

    proptest! {
        /// Any interleaving of pushes (with deliberately colliding times)
        /// and pops yields the identical pop sequence — times, seqs, and
        /// payload tokens — from the slab-indexed queue and the reference.
        #[test]
        fn indexed_queue_matches_reference_pop_order(
            ops in proptest::collection::vec((any::<bool>(), 0u64..8), 1..400),
        ) {
            let mut q = EventQueue::new();
            let mut model = ModelQueue::default();
            let mut token = 0u64;
            for (push, t) in ops {
                if push {
                    // Times drawn from 8 values force heavy (at,) ties so
                    // the seq tie-break is actually exercised.
                    q.push(Time::from_nanos(t), EventKind::Timer { node: NodeId(0), token });
                    model.push(Time::from_nanos(t), token);
                    token += 1;
                } else {
                    match (q.pop(), model.pop()) {
                        (None, None) => {}
                        (Some(got), Some((at, seq, tok))) => {
                            prop_assert_eq!(got.at, at);
                            prop_assert_eq!(got.seq, seq);
                            let EventKind::Timer { token: got_tok, .. } = got.kind else {
                                return Err(TestCaseError::fail("wrong event kind"));
                            };
                            prop_assert_eq!(got_tok, tok);
                        }
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "emptiness diverged: queue={} model={}",
                                a.is_some(),
                                b.is_some()
                            )));
                        }
                    }
                }
            }
            // Drain both: the tails must agree too.
            while let Some((at, seq, tok)) = model.pop() {
                let got = q.pop().expect("queue drained early");
                prop_assert_eq!((got.at, got.seq), (at, seq));
                let EventKind::Timer { token: got_tok, .. } = got.kind else {
                    return Err(TestCaseError::fail("wrong event kind"));
                };
                prop_assert_eq!(got_tok, tok);
            }
            prop_assert!(q.pop().is_none());
            prop_assert!(q.is_empty());
        }
    }

    use extmem_sim::{with_sched_backend, SchedBackend};

    /// A time in one of the wheel's distinct regimes: same-granule ties,
    /// the L0 fine ring, each coarse level, the horizon edge, and the
    /// far-future overflow map.
    fn time_for(class: u8, r: u64) -> Time {
        match class % 6 {
            0 => Time::from_picos(r % 4096),        // one granule: forced ties
            1 => Time::from_nanos(r % 2_000_000),   // L0 / L1
            2 => Time::from_micros(r % 500),        // L1 / L2
            3 => Time::from_millis(r % 270),        // L2 / L3
            4 => Time::from_millis(270 + r % 100),  // the ~275 ms horizon edge
            _ => Time::from_secs(1 + r % 3),        // deep overflow
        }
    }

    /// Run one op script against a chosen scheduler backend and log every
    /// observable: pop results (time, seq, token), pop-empty, and cancel
    /// outcomes. Equal logs ⇒ the backends are observationally identical.
    fn run_script(backend: SchedBackend, ops: &[(u8, u8, u64)]) -> Vec<(u64, u64, u64)> {
        with_sched_backend(backend, || {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            let mut log = Vec::new();
            let mut token = 0u64;
            for &(kind, class, r) in ops {
                match kind % 4 {
                    // Plain push (no handle kept).
                    0 => {
                        q.push(
                            time_for(class, r),
                            EventKind::Timer { node: NodeId(0), token },
                        );
                        token += 1;
                    }
                    // Cancellable push.
                    1 => {
                        handles.push(q.push_timer(time_for(class, r), NodeId(0), token));
                        token += 1;
                    }
                    // Cancel-then-reschedule: revoke a random live handle
                    // (possibly already fired — then a stale no-op) and
                    // immediately re-arm at a different time.
                    2 if !handles.is_empty() => {
                        let h = handles.remove((r as usize) % handles.len());
                        let cancelled = q.cancel(h);
                        log.push((u64::MAX, cancelled as u64, u64::MAX));
                        handles.push(q.push_timer(
                            time_for(class.wrapping_add(1), r ^ 0x5555),
                            NodeId(0),
                            token,
                        ));
                        token += 1;
                    }
                    _ => match q.pop() {
                        Some(s) => {
                            let EventKind::Timer { token: t, .. } = s.kind else {
                                panic!("queue returned a non-timer event");
                            };
                            log.push((s.at.picos(), s.seq, t));
                        }
                        None => log.push((0, 0, u64::MAX - 1)),
                    },
                }
            }
            while let Some(s) = q.pop() {
                let EventKind::Timer { token: t, .. } = s.kind else {
                    panic!("queue returned a non-timer event");
                };
                log.push((s.at.picos(), s.seq, t));
            }
            log
        })
    }

    proptest! {
        /// The timing wheel and the binary-heap oracle are observationally
        /// identical for any interleaving of pushes across every wheel
        /// regime — equal-time ties, all coarse levels, the horizon edge,
        /// and far-future overflow — plus pops and cancel-then-reschedule.
        #[test]
        fn wheel_matches_heap_oracle(
            ops in proptest::collection::vec((0u8..8, any::<u8>(), any::<u64>()), 1..400),
        ) {
            let wheel = run_script(SchedBackend::Wheel, &ops);
            let heap = run_script(SchedBackend::Heap, &ops);
            prop_assert_eq!(wheel, heap);
        }

        /// Far-future events only: everything lands in the overflow map (or
        /// the outermost level) and must still drain in exact (at, seq)
        /// order on both backends.
        #[test]
        fn far_future_overflow_matches_oracle(
            times in proptest::collection::vec(0u64..10_000, 1..200),
        ) {
            let ops: Vec<(u8, u8, u64)> = times
                .iter()
                .map(|&t| (1u8, 4 + (t % 2) as u8, t))
                .collect();
            let wheel = run_script(SchedBackend::Wheel, &ops);
            let heap = run_script(SchedBackend::Heap, &ops);
            prop_assert_eq!(wheel, heap);
        }
    }
}

/// The conservative parallel engine on random topologies: the lookahead
/// safety margin must never collapse, and the trace must be bit-identical
/// to the sequential wheel for any shape, propagation mix, and thread
/// count.
mod parallel_engine {
    use extmem_apps::workload::{SinkNode, TrafficGenNode, WorkloadSpec};
    use extmem_sim::{with_sched_backend, LinkSpec, SchedBackend, SimBuilder};
    use extmem_types::{FiveTuple, PortId, Rate, TimeDelta};
    use extmem_wire::MacAddr;
    use proptest::prelude::*;

    /// One generator→sink pair with its own frame count, size, and link
    /// propagation delay (always ≥ 1 ps — the lookahead precondition).
    #[derive(Clone, Copy, Debug)]
    struct Pair {
        count: u64,
        frame_len: usize,
        prop_ns: u64,
        gbps: u64,
    }

    fn pair_strategy() -> impl Strategy<Value = Pair> {
        (1u64..30, 64usize..1200, 1u64..1000, 1u64..40).prop_map(
            |(count, frame_len, prop_ns, gbps)| Pair {
                count,
                frame_len,
                prop_ns,
                gbps,
            },
        )
    }

    /// Build the topology with all generators first and all sinks last, so
    /// the contiguous partitioner splits every pair across the worker
    /// boundary and each gen→sink link is a cross-partition channel.
    fn run(pairs: &[Pair], seed: u64, threads: usize) -> (u64, u64, u64, extmem_sim::ParStats) {
        with_sched_backend(SchedBackend::Parallel(threads), || {
            let mut b = SimBuilder::new(seed);
            let gens: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let flow = FiveTuple::new(
                        0x0a00_0001 + i as u32,
                        0x0a00_1001 + i as u32,
                        4000 + i as u16,
                        9000,
                        17,
                    );
                    b.add_node(Box::new(TrafficGenNode::new(
                        format!("gen{i}"),
                        WorkloadSpec::simple(
                            MacAddr::local(1 + i as u32),
                            MacAddr::local(101 + i as u32),
                            flow,
                            p.frame_len,
                            Rate::from_gbps(p.gbps),
                            p.count,
                        ),
                    )))
                })
                .collect();
            let sinks: Vec<_> = (0..pairs.len())
                .map(|i| b.add_node(Box::new(SinkNode::new(format!("sink{i}")))))
                .collect();
            for (i, p) in pairs.iter().enumerate() {
                b.connect(
                    gens[i],
                    PortId(0),
                    sinks[i],
                    PortId(0),
                    LinkSpec::new(
                        Rate::from_gbps(p.gbps),
                        TimeDelta::from_nanos(p.prop_ns),
                    ),
                );
            }
            let mut sim = b.build();
            for &g in &gens {
                sim.schedule_timer(g, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
            }
            sim.run_to_quiescence();
            for (i, p) in pairs.iter().enumerate() {
                assert_eq!(
                    sim.node::<SinkNode>(sinks[i]).received,
                    p.count,
                    "pair {i} lost frames"
                );
            }
            (
                sim.trace_digest(),
                sim.events_processed(),
                sim.packets_delivered(),
                sim.par_stats(),
            )
        })
    }

    proptest! {
        // Each case spawns real worker threads; keep the case count modest.
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Lookahead safety: for any topology whose cross links have
        /// positive propagation, no partition ever dispatches an event at
        /// or past its safe bound — the measured dispatch margin stays
        /// ≥ 1 ps whenever partitions actually exchanged messages.
        #[test]
        fn lookahead_margin_never_collapses(
            pairs in proptest::collection::vec(pair_strategy(), 2..6),
            seed in 0u64..1_000,
            threads in 2usize..5,
        ) {
            let (_, _, _, par) = run(&pairs, seed, threads);
            prop_assert!(par.partitions >= 2, "partitioner collapsed: {par:?}");
            if par.cross_messages > 0 {
                prop_assert!(
                    par.min_dispatch_margin_picos >= 1,
                    "dispatch margin collapsed: {par:?}"
                );
            }
        }

        /// Digest equivalence: the parallel engine's trace is bit-identical
        /// to the sequential wheel for any random topology and any worker
        /// count, event-for-event.
        #[test]
        fn parallel_matches_wheel_digest(
            pairs in proptest::collection::vec(pair_strategy(), 2..6),
            seed in 0u64..1_000,
            threads in 2usize..5,
        ) {
            let (wd, we, wp, _) = run(&pairs, seed, 1);
            let (pd, pe, pp, _) = run(&pairs, seed, threads);
            prop_assert_eq!(wd, pd, "trace digests diverged at {} threads", threads);
            prop_assert_eq!(we, pe, "event counts diverged");
            prop_assert_eq!(wp, pp, "delivered packets diverged");
        }
    }
}

mod choice_filter {
    use super::*;

    fn key_of(i: u16) -> FiveTuple {
        FiveTuple::new(0x0a00_0001, 0x0a00_0002, 40_000 + i, 80, 17)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Counting semantics under churn: as long as removes only target
        /// currently-inserted copies, no counter ever underflows and every
        /// key with a surviving copy still queries positive (a counting
        /// Bloom filter has no false negatives).
        #[test]
        fn churn_never_underflows_a_counter(
            cells in 64usize..512,
            ops in proptest::collection::vec((any::<bool>(), 0u16..32), 1..400),
        ) {
            let mut filter = ChoiceFilter::new(cells, 2);
            let mut model: HashMap<u16, u32> = HashMap::new();
            for (insert, ki) in ops {
                let key = key_of(ki);
                if insert {
                    filter.insert(&key);
                    *model.entry(ki).or_insert(0) += 1;
                } else if model.get(&ki).copied().unwrap_or(0) > 0 {
                    filter.remove(&key);
                    *model.get_mut(&ki).unwrap() -= 1;
                }
                prop_assert_eq!(filter.stats().underflows, 0);
                for (&k, &n) in &model {
                    if n > 0 {
                        prop_assert!(filter.contains(&key_of(k)), "false negative for {}", k);
                    }
                }
            }
        }

        /// Deleting a batch of keys restores the exact pre-insert state:
        /// every counter returns to its old value, so the false-positive
        /// set over an arbitrary probe universe is bit-for-bit restored.
        #[test]
        fn delete_restores_the_false_positive_set(
            cells in 64usize..512,
            base_raw in proptest::collection::vec(0u16..24, 0..12),
            batch_raw in proptest::collection::vec(24u16..48, 1..16),
        ) {
            // Dedup: the restore property is about sets (each key inserted
            // once, removed once).
            let base: std::collections::BTreeSet<u16> = base_raw.into_iter().collect();
            let batch: std::collections::BTreeSet<u16> = batch_raw.into_iter().collect();
            let mut filter = ChoiceFilter::new(cells, 2);
            for &k in &base {
                filter.insert(&key_of(k));
            }
            let counts_before = filter.raw_counts().to_vec();
            let fp_before: Vec<bool> = (0..256).map(|i| filter.contains(&key_of(i))).collect();
            for &k in &batch {
                filter.insert(&key_of(k));
            }
            for &k in &batch {
                filter.remove(&key_of(k));
            }
            prop_assert_eq!(filter.raw_counts(), &counts_before[..], "counters drifted");
            let fp_after: Vec<bool> = (0..256).map(|i| filter.contains(&key_of(i))).collect();
            prop_assert_eq!(fp_before, fp_after, "false-positive set drifted");
            prop_assert_eq!(filter.stats().underflows, 0);
        }

        /// At the sizing the cuckoo directory uses (16 cells per key, two
        /// hashes), the measured false-positive rate over a disjoint probe
        /// universe stays under the configured bound — the estimate is
        /// occupancy², about 1.6% at this load, asserted with headroom.
        #[test]
        fn false_positive_rate_is_within_bound(keys in 16usize..64) {
            let filter_cells = keys * 16;
            let mut filter = ChoiceFilter::new(filter_cells, 2);
            for i in 0..keys as u16 {
                filter.insert(&key_of(i));
            }
            let probes = 512u16;
            let fps = (0..probes)
                .filter(|&i| filter.contains(&key_of(1000 + i)))
                .count();
            let measured = fps as f64 / probes as f64;
            prop_assert!(
                measured <= 0.06,
                "measured FP rate {:.4} above bound (estimate {:.4})",
                measured,
                filter.fp_estimate()
            );
        }
    }
}

mod shard_ring {
    //! Consistent-hash ring properties at realistic vnode counts: routing
    //! is a pure function of ring membership (unrelated churn moves no
    //! key), scale-out moves about 1/(N+1) of the key space and only onto
    //! the newcomer, scale-in strands nothing, and vnodes keep per-member
    //! load near its fair share.

    use extmem_core::ShardRing;
    use proptest::prelude::*;
    use std::collections::{BTreeSet, HashMap};

    fn ring_of(members: &BTreeSet<u32>, vnodes: usize) -> ShardRing {
        let mut ring = ShardRing::new(vnodes);
        for &m in members {
            ring.add_shard(m);
        }
        ring
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Add-then-remove of an unrelated shard restores routing exactly:
        /// no key observes a membership change it wasn't part of.
        #[test]
        fn unrelated_churn_never_moves_a_key(
            raw in proptest::collection::vec(0u32..64, 2..9),
            churn in 64u32..128,
        ) {
            let members: BTreeSet<u32> = raw.into_iter().collect();
            prop_assume!(members.len() >= 2);
            let mut ring = ring_of(&members, 64);
            let before: Vec<u32> = (0..2048u64).map(|k| ring.shard_for_key(k)).collect();
            ring.add_shard(churn);
            ring.remove_shard(churn);
            let after: Vec<u32> = (0..2048u64).map(|k| ring.shard_for_key(k)).collect();
            prop_assert_eq!(before, after, "unrelated add/remove moved keys");
        }

        /// Scale-out movement: adding one member moves roughly 1/(N+1) of
        /// the key space — never more than 2.5x the ideal at 128 vnodes —
        /// and every key that moves lands on the newcomer, so rebalance
        /// cost is bounded by the newcomer's fair share.
        #[test]
        fn scale_out_moves_about_one_over_n_plus_one(
            raw in proptest::collection::vec(0u32..64, 2..9),
            newcomer in 64u32..128,
        ) {
            let members: BTreeSet<u32> = raw.into_iter().collect();
            prop_assume!(members.len() >= 2);
            let before = ring_of(&members, 128);
            let mut ring = before.clone();
            ring.add_shard(newcomer);
            let ideal = 1.0 / (members.len() as f64 + 1.0);
            let moved = before.remap_fraction(&ring, 1 << 14);
            prop_assert!(moved > 0.0, "newcomer owns nothing");
            prop_assert!(
                moved <= (2.5 * ideal).min(1.0),
                "moved {} of the key space, ideal {}", moved, ideal
            );
            for k in 0..4096u64 {
                let (a, b) = (before.shard_for_key(k), ring.shard_for_key(k));
                if a != b {
                    prop_assert_eq!(b, newcomer, "key {} moved between old members", k);
                }
            }
        }

        /// Scale-in strands nothing: after removing a member every key maps
        /// to a survivor, and keys the victim didn't own never move.
        #[test]
        fn scale_in_strands_no_keys(
            raw in proptest::collection::vec(0u32..64, 3..9),
            pick in any::<prop::sample::Index>(),
        ) {
            let members: BTreeSet<u32> = raw.into_iter().collect();
            prop_assume!(members.len() >= 3);
            let victim = *members.iter().nth(pick.index(members.len())).unwrap();
            let before = ring_of(&members, 64);
            let mut ring = before.clone();
            ring.remove_shard(victim);
            for k in 0..4096u64 {
                let a = before.shard_for_key(k);
                let b = ring.shard_for_key(k);
                prop_assert!(b != victim, "key {} still routed to the removed shard", k);
                if a != victim {
                    prop_assert_eq!(a, b, "survivor key {} moved on scale-in", k);
                }
            }
        }

        /// At 128 vnodes the ring stays balanced: every member owns
        /// something and none owns more than ~2.2x its fair share of a
        /// large key sample.
        #[test]
        fn vnodes_bound_the_load_skew(
            raw in proptest::collection::vec(0u32..256, 2..13),
        ) {
            let members: BTreeSet<u32> = raw.into_iter().collect();
            prop_assume!(members.len() >= 2);
            let ring = ring_of(&members, 128);
            let samples = 1u64 << 14;
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for k in 0..samples {
                *counts.entry(ring.shard_for_key(k)).or_insert(0) += 1;
            }
            prop_assert_eq!(counts.len(), members.len(), "some member owns nothing");
            let fair = samples as f64 / members.len() as f64;
            for (&m, &c) in &counts {
                prop_assert!(
                    (c as f64) <= 2.2 * fair,
                    "shard {} owns {} of {} (fair share {})", m, c, samples, fair
                );
            }
        }
    }
}

/// The remote-op engine against a step-by-step verb oracle: for random op
/// programs over random initial memory, executing each op in the
/// responder's op engine must produce the same returned bytes, the same
/// hit/index decision, and the same final memory image as decomposing it
/// into plain READ/WRITE verbs on a second identical responder. Every op
/// is also delivered twice (as a retransmitted duplicate would be) and
/// must replay the identical response without perturbing memory.
mod remote_op_oracle {
    use extmem_rnic::requester::RequesterQp;
    use extmem_rnic::responder::{process_request, Outcome};
    use extmem_rnic::{MrTable, QueuePair, RemoteOp};
    use extmem_types::{ByteSize, QpNum, Rkey};
    use extmem_wire::extop::{IndirectMode, EXTOP_FLAG_HIT, EXTOP_FLAG_SECONDARY};
    use extmem_wire::roce::{RoceEndpoint, RoceExt};
    use extmem_wire::{MacAddr, Payload};
    use proptest::prelude::*;

    const REGION: u64 = 4096;
    const MTU: usize = 2048;

    /// One remote op described with region-relative offsets, plus the plain
    /// WRITEs that must precede it so the dependent chain is well-formed
    /// (pointers in bounds, length prefixes within their caps).
    #[derive(Clone, Debug)]
    enum OpSpec {
        Gather {
            word_len: u16,
            offs: Vec<u64>,
        },
        IndirectPtr {
            slot_off: u64,
            target_off: u64,
            max_len: u32,
        },
        IndirectLen {
            off: u64,
            len_off: u8,
            hdr_len: u16,
            max_len: u32,
            body_raw: u16,
        },
        HashProbe {
            base_off: u64,
            n_buckets: u32,
            b1: u32,
            b2: u32,
            slot_bytes: u16,
            slots: u16,
            key_off: u8,
            key: Vec<u8>,
            plant: Option<(bool, u16)>,
        },
        CondWrite {
            cmp_off: u64,
            write_off: u64,
            compare: Vec<u8>,
            write: Vec<u8>,
            plant_match: bool,
        },
    }

    impl OpSpec {
        /// Resolve offsets against the region base: the setup WRITEs (applied
        /// identically to both rigs) and the op itself.
        fn materialize(&self, base: u64) -> (Vec<(u64, Vec<u8>)>, RemoteOp) {
            match self {
                OpSpec::Gather { word_len, offs } => (
                    vec![],
                    RemoteOp::Gather {
                        word_len: *word_len,
                        vas: offs.iter().map(|o| base + o).collect(),
                    },
                ),
                OpSpec::IndirectPtr {
                    slot_off,
                    target_off,
                    max_len,
                } => (
                    vec![(base + slot_off, (base + target_off).to_be_bytes().to_vec())],
                    RemoteOp::Indirect {
                        va: base + slot_off,
                        mode: IndirectMode::Pointer,
                        len_off: 0,
                        hdr_len: 0,
                        max_len: *max_len,
                    },
                ),
                OpSpec::IndirectLen {
                    off,
                    len_off,
                    hdr_len,
                    max_len,
                    body_raw,
                } => {
                    let body = (*body_raw as u32 % (max_len + 1)) as u16;
                    (
                        vec![(base + off + *len_off as u64, body.to_be_bytes().to_vec())],
                        RemoteOp::Indirect {
                            va: base + off,
                            mode: IndirectMode::LengthPrefixed,
                            len_off: *len_off,
                            hdr_len: *hdr_len,
                            max_len: *max_len,
                        },
                    )
                }
                OpSpec::HashProbe {
                    base_off,
                    n_buckets,
                    b1,
                    b2,
                    slot_bytes,
                    slots,
                    key_off,
                    key,
                    plant,
                } => {
                    let bucket_bytes = slot_bytes * slots;
                    let b1 = b1 % n_buckets;
                    let b2 = b2 % n_buckets;
                    let mut plants = vec![];
                    if let Some((in_b2, slot)) = plant {
                        let bucket = if *in_b2 { b2 } else { b1 };
                        let va = base
                            + base_off
                            + bucket as u64 * bucket_bytes as u64
                            + (slot % slots) as u64 * *slot_bytes as u64
                            + *key_off as u64;
                        plants.push((va, key.clone()));
                    }
                    (
                        plants,
                        RemoteOp::HashProbe {
                            base_va: base + base_off,
                            b1,
                            b2,
                            bucket_bytes,
                            slot_bytes: *slot_bytes,
                            key_off: *key_off,
                            key: Payload::copy_from_slice(key),
                        },
                    )
                }
                OpSpec::CondWrite {
                    cmp_off,
                    write_off,
                    compare,
                    write,
                    plant_match,
                } => {
                    let mut plants = vec![];
                    if *plant_match {
                        plants.push((base + cmp_off, compare.clone()));
                    }
                    (
                        plants,
                        RemoteOp::CondWrite {
                            cmp_va: base + cmp_off,
                            write_va: base + write_off,
                            compare: Payload::copy_from_slice(compare),
                            write: Payload::copy_from_slice(write),
                        },
                    )
                }
            }
        }
    }

    fn arb_spec() -> impl Strategy<Value = OpSpec> {
        prop_oneof![
            (1u16..33, prop::collection::vec(0u64..REGION - 32, 1..17))
                .prop_map(|(word_len, offs)| OpSpec::Gather { word_len, offs }),
            (0u64..REGION - 8, 0u64..REGION - 64, 1u32..65).prop_map(
                |(slot_off, target_off, max_len)| OpSpec::IndirectPtr {
                    slot_off,
                    target_off,
                    max_len,
                }
            ),
            (0u64..REGION - 80, 0u8..7, 0u16..9, 1u32..65, any::<u16>()).prop_map(
                |(off, len_off, extra, max_len, body_raw)| OpSpec::IndirectLen {
                    off,
                    len_off,
                    hdr_len: len_off as u16 + 2 + extra,
                    max_len,
                    body_raw,
                }
            ),
            (
                (0u64..REGION - 1024, 1u32..9, any::<u32>(), any::<u32>()),
                (
                    prop::sample::select(vec![8u16, 16, 32]),
                    1u16..5,
                    0u8..5,
                    prop::collection::vec(any::<u8>(), 1..5),
                    (any::<bool>(), any::<bool>(), any::<u16>())
                        .prop_map(|(p, in_b2, slot)| p.then_some((in_b2, slot))),
                ),
            )
                .prop_map(
                    |(
                        (base_off, n_buckets, b1, b2),
                        (slot_bytes, slots, key_off, key, plant),
                    )| OpSpec::HashProbe {
                        base_off,
                        n_buckets,
                        b1,
                        b2,
                        slot_bytes,
                        slots,
                        key_off,
                        key,
                        plant,
                    }
                ),
            (
                0u64..REGION - 8,
                0u64..REGION - 24,
                prop::collection::vec(any::<u8>(), 1..9),
                prop::collection::vec(any::<u8>(), 1..25),
                any::<bool>(),
            )
                .prop_map(|(cmp_off, write_off, compare, write, plant_match)| {
                    OpSpec::CondWrite {
                        cmp_off,
                        write_off,
                        compare,
                        write,
                        plant_match,
                    }
                }),
        ]
    }

    /// A requester + responder pair over one registered region.
    struct Rig {
        server: RoceEndpoint,
        req: RequesterQp,
        qp: QueuePair,
        mrs: MrTable,
        rkey: Rkey,
        base: u64,
    }

    impl Rig {
        fn new(image: &[u8]) -> Rig {
            let switch = RoceEndpoint {
                mac: MacAddr::local(1),
                ip: 0x0a000001,
            };
            let server = RoceEndpoint {
                mac: MacAddr::local(2),
                ip: 0x0a000002,
            };
            let mut mrs = MrTable::new();
            let (rkey, base) = mrs.register(ByteSize::from_bytes(REGION));
            mrs.get_mut(rkey).unwrap().write(base, image).unwrap();
            Rig {
                server,
                req: RequesterQp::new(switch, server, QpNum(0x100), MTU),
                qp: QueuePair::new(QpNum(0x100), switch, QpNum(0x200), 0),
                mrs,
                rkey,
                base,
            }
        }

        fn write(&mut self, va: u64, bytes: &[u8]) {
            let pkt = self.req.write_only(self.rkey, va, bytes.to_vec(), false);
            let r = process_request(self.server, &mut self.qp, &mut self.mrs, &pkt, MTU);
            assert!(
                matches!(r.outcome, Outcome::WriteExecuted { .. }),
                "{:?}",
                r.outcome
            );
        }

        fn read(&mut self, va: u64, len: u32) -> Vec<u8> {
            let pkt = self.req.read(self.rkey, va, len);
            let r = process_request(self.server, &mut self.qp, &mut self.mrs, &pkt, MTU);
            assert!(
                matches!(r.outcome, Outcome::ReadServed { .. }),
                "{:?}",
                r.outcome
            );
            let mut out = Vec::new();
            for p in &r.responses {
                out.extend_from_slice(&p.payload[..]);
            }
            out
        }

        /// Execute a remote op, then deliver the identical packet again (a
        /// retransmitted duplicate) and demand a byte-identical replay.
        fn remote(&mut self, op: &RemoteOp) -> (u8, u16, Vec<u8>) {
            let pkt = self.req.remote_op(self.rkey, op);
            let r = process_request(self.server, &mut self.qp, &mut self.mrs, &pkt, MTU);
            assert!(
                matches!(r.outcome, Outcome::ExtOpExecuted { .. }),
                "{:?}",
                r.outcome
            );
            let resp = &r.responses[0];
            let RoceExt::ExtOpAck(_, eth) = &resp.ext else {
                panic!("not an ext-op response: {:?}", resp.ext)
            };
            let first = (eth.flags, eth.index, resp.payload[..].to_vec());
            let before = self.image();
            let r2 = process_request(self.server, &mut self.qp, &mut self.mrs, &pkt, MTU);
            assert!(matches!(r2.outcome, Outcome::Duplicate), "{:?}", r2.outcome);
            let resp2 = &r2.responses[0];
            let RoceExt::ExtOpAck(_, eth2) = &resp2.ext else {
                panic!("duplicate replay is not an ext-op response")
            };
            assert_eq!(
                (eth2.flags, eth2.index, resp2.payload[..].to_vec()),
                first,
                "duplicate replay diverged"
            );
            assert_eq!(self.image(), before, "duplicate perturbed memory");
            first
        }

        /// The verb oracle: the same op decomposed into dependent plain
        /// READ / WRITE verbs, reproducing the engine's decision logic.
        fn oracle(&mut self, op: &RemoteOp) -> (u8, u16, Vec<u8>) {
            match op {
                RemoteOp::Gather { word_len, vas } => {
                    let mut out = Vec::new();
                    for va in vas {
                        out.extend_from_slice(&self.read(*va, *word_len as u32));
                    }
                    (EXTOP_FLAG_HIT, 0, out)
                }
                RemoteOp::Indirect {
                    va,
                    mode: IndirectMode::Pointer,
                    max_len,
                    ..
                } => {
                    let ptr = u64::from_be_bytes(self.read(*va, 8).try_into().unwrap());
                    (EXTOP_FLAG_HIT, 0, self.read(ptr, *max_len))
                }
                RemoteOp::Indirect {
                    va,
                    mode: IndirectMode::LengthPrefixed,
                    len_off,
                    hdr_len,
                    ..
                } => {
                    let hdr = self.read(*va, *hdr_len as u32);
                    let off = *len_off as usize;
                    let body =
                        u16::from_be_bytes(hdr[off..off + 2].try_into().unwrap()) as u32;
                    (EXTOP_FLAG_HIT, 0, self.read(*va, *hdr_len as u32 + body))
                }
                RemoteOp::HashProbe {
                    base_va,
                    b1,
                    b2,
                    bucket_bytes,
                    slot_bytes,
                    key_off,
                    key,
                } => {
                    for (nth, bucket) in [*b1, *b2].into_iter().enumerate() {
                        if nth == 1 && b2 == b1 {
                            break;
                        }
                        let va = base_va + bucket as u64 * *bucket_bytes as u64;
                        let data = self.read(va, *bucket_bytes as u32);
                        for slot in 0..(bucket_bytes / slot_bytes) as usize {
                            let at = slot * *slot_bytes as usize + *key_off as usize;
                            if data[at..at + key.len()] == key[..] {
                                let mut flags = EXTOP_FLAG_HIT;
                                if nth == 1 {
                                    flags |= EXTOP_FLAG_SECONDARY;
                                }
                                return (flags, slot as u16, data);
                            }
                        }
                    }
                    (0, 0, vec![])
                }
                RemoteOp::CondWrite {
                    cmp_va,
                    write_va,
                    compare,
                    write,
                } => {
                    let observed = self.read(*cmp_va, compare.len() as u32);
                    let mut flags = 0;
                    if observed[..] == compare[..] {
                        let img = write[..].to_vec();
                        self.write(*write_va, &img);
                        flags = EXTOP_FLAG_HIT;
                    }
                    (flags, 0, observed)
                }
            }
        }

        fn image(&self) -> Vec<u8> {
            self.mrs
                .get(self.rkey)
                .unwrap()
                .read(self.base, REGION)
                .unwrap()
                .to_vec()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
        #[test]
        fn remote_ops_match_verb_oracle(
            image in prop::collection::vec(any::<u8>(), REGION as usize..REGION as usize + 1),
            specs in prop::collection::vec(arb_spec(), 1..8),
        ) {
            let mut remote = Rig::new(&image);
            let mut oracle = Rig::new(&image);
            prop_assert_eq!(remote.base, oracle.base);
            for spec in &specs {
                let (plants, op) = spec.materialize(remote.base);
                for (va, bytes) in &plants {
                    remote.write(*va, bytes);
                    oracle.write(*va, bytes);
                }
                let got = remote.remote(&op);
                let want = oracle.oracle(&op);
                prop_assert_eq!(got, want, "engine vs oracle diverged on {:?}", op);
            }
            // Same final memory image: every op's side effects agree.
            prop_assert_eq!(remote.image(), oracle.image());
        }
    }
}
