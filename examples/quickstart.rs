//! Quickstart: the whole system in one file.
//!
//! Builds the smallest interesting topology — two hosts, a ToR switch
//! running the **state-store primitive**, and one memory server — pushes a
//! thousand packets through it, and shows that (a) traffic is forwarded
//! normally, (b) per-flow counters materialize in the *server's* DRAM via
//! RDMA Fetch-and-Add, and (c) the server CPU handled zero packets.
//!
//! Run with: `cargo run --release --example quickstart`

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::faa::{FaaConfig, FaaEngine};
use extmem_core::state_store::{read_remote_counters, StateStoreProgram};
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

fn main() {
    // ---------------------------------------------------------------
    // 1. Control plane (the only CPU involvement in the whole design):
    //    register memory on the server and set up the RDMA channel.
    // ---------------------------------------------------------------
    let counters = 1024u64;
    let mut nic = RnicNode::new("memory-server", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(
        switch_endpoint(),
        PortId(2), // the switch port the server hangs off
        &mut nic,
        ByteSize::from_bytes(counters * 8),
    );
    let (rkey, base_va) = (channel.rkey, channel.base_va);
    println!(
        "channel: qpn={} rkey={} base=0x{:x}",
        channel.qp.peer_qpn, rkey, base_va
    );

    // ---------------------------------------------------------------
    // 2. The data-plane program: L2 forwarding + remote per-flow counting.
    // ---------------------------------------------------------------
    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    let engine = FaaEngine::new(channel, FaaConfig::default());
    let program = StateStoreProgram::new(fib, engine, TimeDelta::from_micros(50));

    // ---------------------------------------------------------------
    // 3. Topology: sender -- switch -- receiver, memory server on port 2.
    // ---------------------------------------------------------------
    let mut b = SimBuilder::new(1);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(program),
    )));
    let flows: Vec<FiveTuple> = (0..4)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 5000 + i, 9000, 17))
        .collect();
    let sender = b.add_node(Box::new(TrafficGenNode::new(
        "sender",
        WorkloadSpec {
            src_mac: host_mac(0),
            dst_mac: host_mac(1),
            flows: flows.clone().into(),
            pick: FlowPick::Uniform,
            frame_len: 256,
            offered: Some(Rate::from_gbps(10)),
            arrival: extmem_apps::workload::Arrival::Paced,
            count: 1000,
            seed: 7,
            flow_id_base: 0,
        },
    )));
    let receiver = b.add_node(Box::new(SinkNode::new("receiver")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), sender, PortId(0), link);
    b.connect(switch, PortId(1), receiver, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), server, PortId(0), link);

    // ---------------------------------------------------------------
    // 4. Run. After the workload, give the switch a moment to flush its
    //    outstanding Fetch-and-Adds.
    // ---------------------------------------------------------------
    let mut sim = b.build();
    sim.schedule_timer(sender, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(5));

    // ---------------------------------------------------------------
    // 5. Inspect: end-to-end delivery, and counters in server DRAM.
    // ---------------------------------------------------------------
    let sink = sim.node::<SinkNode>(receiver);
    println!(
        "forwarded {} packets end-to-end, median latency {}",
        sink.received,
        sink.latency.summarize().unwrap().median
    );

    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let prog = sw.program::<StateStoreProgram>();
    let nic = sim.node::<RnicNode>(server);
    let remote = read_remote_counters(nic, rkey, base_va, counters);

    println!("\nper-flow counters (read from the server's DRAM):");
    for f in &flows {
        let slot = prog.slot_of(f);
        println!(
            "  {:?} -> slot {:4}: {:4} packets",
            f, slot, remote[slot as usize]
        );
    }
    let total: u64 = remote.iter().sum();
    println!("\nremote total = {total} (sent 1000)");
    println!(
        "FaA requests sent: {} (merged {} updates into fewer ops)",
        prog.faa_stats().faa_sent,
        prog.faa_stats().merged
    );
    println!(
        "server CPU packets: {} (zero CPU involvement)",
        nic.stats().cpu_packets
    );
    assert_eq!(total, 1000);
    assert_eq!(nic.stats().cpu_packets, 0);
    println!("\nOK");
}
