//! Telemetry with remote sketches (§2.3 / Fig 1c): heavy-hitter detection
//! over Count-Min and Count Sketch state held in server DRAM.
//!
//! Every packet updates `rows` remote counters via RDMA Fetch-and-Add; the
//! operator later reads the counter region from the server and runs the
//! estimators — "network operators can run any estimation algorithms (e.g.,
//! heavy-hitter detection) on the remote counter".
//!
//! Run with: `cargo run --release --example telemetry_sketch`

use extmem_apps::telemetry::run_sketch;
use extmem_core::sketch::{SketchGeometry, SketchKind};

fn main() {
    let geometry = SketchGeometry {
        rows: 4,
        cols: 1024,
    };
    println!(
        "remote sketch: {} rows x {} cols = {} of server DRAM, Zipf(1.2) over 64 flows\n",
        geometry.rows,
        geometry.cols,
        extmem_types::ByteSize::from_bytes(geometry.region_bytes()),
    );

    for kind in [SketchKind::CountMin, SketchKind::CountSketch] {
        let r = run_sketch(kind, geometry, 64, 6_000, 300, 13);
        println!("--- {kind:?} ---");
        println!(
            "  FaA sent {} for {} updates (merge ratio {:.2})",
            r.faa.faa_sent,
            r.faa.updates,
            r.faa.merged as f64 / r.faa.updates as f64
        );

        // Show the five hottest flows: truth vs estimate.
        let mut by_truth: Vec<(usize, u64, i64)> = r
            .estimates
            .iter()
            .enumerate()
            .map(|(i, &(t, e))| (i, t, e))
            .collect();
        by_truth.sort_by_key(|&(_, t, _)| std::cmp::Reverse(t));
        println!("  flow   truth   estimate");
        for &(i, t, e) in by_truth.iter().take(5) {
            println!("  {i:>4}  {t:>6}  {e:>9}");
        }
        println!("  heavy hitters (est >= 300): {:?}\n", r.heavy_hitters);
        assert!(
            r.heavy_hitters.contains(&0),
            "the Zipf head must be detected"
        );
    }

    println!("Count-Min never underestimates; Count Sketch is unbiased — both recover");
    println!("the elephants from counters the switch could never hold on-chip.");
}
