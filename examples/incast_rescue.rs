//! Incast rescue (§2.1 / Fig 1a): a last-hop ToR absorbs an 8-into-1
//! burst by extending its packet buffer into server DRAM.
//!
//! Runs the paper's worked example — 8 senders × 40 Gbps, 50 MB aggregate
//! burst, a 12 MB switch buffer — first as a plain drop-tail switch, then
//! with the packet-buffer primitive striping a remote ring across the
//! rack's servers, and compares the outcomes.
//!
//! Run with: `cargo run --release --example incast_rescue`

use extmem_apps::incast::{run_incast, IncastConfig, RemoteBufferSpec};

fn main() {
    println!("incast: 8 senders x 40G -> one 40G receiver, 50MB burst, 12MB buffer\n");

    println!("--- baseline: drop-tail ToR ---");
    let baseline = run_incast(IncastConfig::paper_scale(None));
    report(&baseline);

    println!("\n--- with the remote packet buffer (ring striped over 9 servers) ---");
    let rescued = run_incast(IncastConfig::paper_scale(Some(RemoteBufferSpec::default())));
    report(&rescued);

    println!("\nsummary:");
    println!(
        "  baseline delivered {:.1}% and dropped {} frames;",
        baseline.delivery_ratio * 100.0,
        baseline.tm_drops
    );
    println!(
        "  the remote buffer delivered {:.1}% with {} drops, peak local buffer {:.1} MB,",
        rescued.delivery_ratio * 100.0,
        rescued.tm_drops,
        rescued.peak_buffer as f64 / 1e6
    );
    println!(
        "  detouring {} frames through server DRAM (peak ring {} entries ~ {:.0} MB).",
        rescued.pb.stored,
        rescued.pb.max_ring_occupancy,
        rescued.pb.max_ring_occupancy as f64 * 2048.0 / 1e6
    );
    assert_eq!(rescued.delivered, rescued.sent);
}

fn report(r: &extmem_apps::incast::IncastResult) {
    println!("  sent       {:>8}", r.sent);
    println!(
        "  delivered  {:>8}  ({:.1}%)",
        r.delivered,
        r.delivery_ratio * 100.0
    );
    println!("  drops      {:>8}", r.tm_drops);
    println!("  reorders   {:>8}", r.reorders);
    println!(
        "  completion {:>8.2} ms  (lower bound 10 ms = 50MB/40Gbps)",
        r.completion.as_millis_f64()
    );
    println!("  peak buffer{:>8.2} MB", r.peak_buffer as f64 / 1e6);
}
