//! Bare-metal hosting gateway (§2.2 / Fig 1b): VIP→PIP translation with a
//! remote lookup table and a local SRAM cache.
//!
//! Customers' blackbox servers send to virtual IPs; the ToR translates each
//! packet to the physical address by fetching `(action, packet)` from a
//! table held in server DRAM — bouncing the packet itself through remote
//! memory so the switch never buffers it — and caches hot entries locally.
//!
//! Run with: `cargo run --release --example baremetal_gateway`

use extmem_apps::baremetal::{run_gateway, GatewayConfig};
use extmem_apps::workload::FlowPick;
use extmem_types::Rate;

fn main() {
    println!("bare-metal gateway: 128 VIPs, Zipf(1.2) traffic, 8000 packets\n");

    for (label, cache) in [
        ("no local cache (every packet fetches remotely)", None),
        ("32-entry local cache", Some(32usize)),
        ("256-entry local cache", Some(256)),
    ] {
        let r = run_gateway(GatewayConfig {
            n_vips: 128,
            pick: FlowPick::Zipf(1.2),
            count: 8_000,
            frame_len: 512,
            offered: Rate::from_gbps(5),
            cache,
            table_entries: 8192,
            entry_size: 2048,
            recirculate: false,
            seed: 99,
        });
        println!("--- {label} ---");
        println!("  delivered        {} / {}", r.delivered, r.sent);
        println!("  cache hit rate   {:.1}%", r.cache_hit_rate * 100.0);
        println!("  remote lookups   {}", r.lookup.remote_lookups);
        println!("  median latency   {}", r.latency.median);
        println!("  p99 latency      {}", r.latency.p99);
        println!("  server CPU pkts  {}\n", r.server_cpu_packets);
        assert_eq!(r.delivered, r.sent);
        assert_eq!(r.server_cpu_packets, 0);
    }

    println!("the remote table eliminates the CPU slow path entirely: even cache misses");
    println!("are served by the server's RNIC, never its CPU (\"no CPU overhead or");
    println!("software latency\", §2.2).");
}
