//! Streaming packet-trace capture and analysis (§2.3 / §7).
//!
//! The switch mirrors every forwarded packet as a 32-byte record into a
//! ring in server DRAM via RDMA WRITE — "this eliminates the CPU cycles
//! required for capturing and parsing packets". The operator then reads the
//! trace straight out of the server's memory and runs flow accounting,
//! top-k, and microburst detection on it.
//!
//! Run with: `cargo run --release --example packet_trace`

use extmem_apps::scenario::{host_endpoint, host_ip, host_mac, switch_endpoint};
use extmem_apps::workload::{FlowPick, SinkNode, TrafficGenNode, WorkloadSpec};
use extmem_core::trace_store::{analysis, read_remote_trace, TraceStoreProgram};
use extmem_core::{Fib, RdmaChannel};
use extmem_rnic::{RnicConfig, RnicNode};
use extmem_sim::{LinkSpec, SimBuilder};
use extmem_switch::{SwitchConfig, SwitchNode};
use extmem_types::{ByteSize, FiveTuple, PortId, Rate, Time, TimeDelta};

fn main() {
    // Control plane: a 1 MB trace ring on the telemetry server.
    let mut nic = RnicNode::new("tracesrv", RnicConfig::at(host_endpoint(2)));
    let channel = RdmaChannel::setup(switch_endpoint(), PortId(2), &mut nic, ByteSize::from_mb(1));
    let (rkey, base) = (channel.rkey, channel.base_va);

    let mut fib = Fib::new(8);
    fib.install(host_mac(0), PortId(0));
    fib.install(host_mac(1), PortId(1));
    // Batch 8 records per WRITE (see ablation A7 for why batching matters).
    let program = TraceStoreProgram::new(fib, channel, 8, TimeDelta::from_micros(20));

    let flows: Vec<FiveTuple> = (0..12)
        .map(|i| FiveTuple::new(host_ip(0), host_ip(1), 6000 + i, 9000, 17))
        .collect();
    let mut b = SimBuilder::new(2);
    let switch = b.add_node(Box::new(SwitchNode::new(
        "tor",
        SwitchConfig::default(),
        Box::new(program),
    )));
    let sender = b.add_node(Box::new(TrafficGenNode::new(
        "sender",
        WorkloadSpec {
            src_mac: host_mac(0),
            dst_mac: host_mac(1),
            flows: flows.clone().into(),
            pick: FlowPick::Zipf(1.1),
            frame_len: 400,
            offered: Some(Rate::from_gbps(8)),
            arrival: extmem_apps::workload::Arrival::Poisson,
            count: 3_000,
            seed: 11,
            flow_id_base: 0,
        },
    )));
    let receiver = b.add_node(Box::new(SinkNode::new("receiver")));
    let link = LinkSpec::testbed_40g();
    b.connect(switch, PortId(0), sender, PortId(0), link);
    b.connect(switch, PortId(1), receiver, PortId(0), link);
    let server = b.add_node(Box::new(nic));
    b.connect(switch, PortId(2), server, PortId(0), link);

    let mut sim = b.build();
    sim.schedule_timer(sender, TimeDelta::ZERO, TrafficGenNode::KICK_TOKEN);
    sim.run_until(Time::from_millis(5));

    let sw: &SwitchNode = sim.node::<SwitchNode>(switch);
    let prog = sw.program::<TraceStoreProgram>();
    let nic = sim.node::<RnicNode>(server);
    println!(
        "captured {} events in {} RDMA WRITEs; server CPU packets: {}",
        prog.captured(),
        prog.stats().writes,
        nic.stats().cpu_packets
    );
    assert_eq!(nic.stats().cpu_packets, 0);

    // Operator side: pull the trace out of server DRAM and analyze it.
    let trace = read_remote_trace(nic, rkey, base, prog.ring_records(), prog.captured());
    println!("\ntop flows by bytes (from the remote trace):");
    for (flow, agg) in analysis::top_k_by_bytes(&trace, 5) {
        println!("  {flow:?}  {:>5} pkts  {:>8} B", agg.packets, agg.bytes);
    }
    let w = TimeDelta::from_micros(10);
    println!(
        "\nmax burst inside any {w} window: {} bytes",
        analysis::max_burst_bytes(&trace, w)
    );
    if let Some(gap) = analysis::median_interarrival(&trace, &flows[0]) {
        println!("median inter-arrival of the hottest flow: {gap}");
    }
    assert_eq!(trace.len() as u64, prog.captured().min(prog.ring_records()));
    println!("\nOK");
}
